// Wire-protocol unit tests: LineBuffer framing (partial reads, pipelining,
// oversized lines), the JSON parser (escapes, surrogate pairs, the depth
// limit), request parsing/validation against the limits.h envelope, and the
// response encoders (id echo, retry_after_ms, parse-back round-trips).
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>

#include "gen/figure1.h"
#include "query/query_parser.h"
#include "server/json.h"
#include "server/limits.h"
#include "server/wire.h"
#include "service/request.h"

namespace whyq::server {
namespace {

// ---------------------------------------------------------------------------
// LineBuffer
// ---------------------------------------------------------------------------

TEST(ProtocolLineBufferTest, PartialReadsAssembleOneLine) {
  LineBuffer buf(64, 256);
  std::string line;
  ASSERT_TRUE(buf.Append("{\"quest", 7));
  EXPECT_EQ(buf.PopLine(&line), LineBuffer::Pop::kNone);
  ASSERT_TRUE(buf.Append("ion\":\"stats\"}", 13));
  EXPECT_EQ(buf.PopLine(&line), LineBuffer::Pop::kNone);
  ASSERT_TRUE(buf.Append("\n", 1));
  ASSERT_EQ(buf.PopLine(&line), LineBuffer::Pop::kLine);
  EXPECT_EQ(line, "{\"question\":\"stats\"}");
  EXPECT_EQ(buf.PopLine(&line), LineBuffer::Pop::kNone);
}

TEST(ProtocolLineBufferTest, PipelinedLinesPopInOrder) {
  LineBuffer buf(64, 256);
  std::string data = "one\ntwo\nthree\npartial";
  ASSERT_TRUE(buf.Append(data.data(), data.size()));
  std::string line;
  ASSERT_EQ(buf.PopLine(&line), LineBuffer::Pop::kLine);
  EXPECT_EQ(line, "one");
  ASSERT_EQ(buf.PopLine(&line), LineBuffer::Pop::kLine);
  EXPECT_EQ(line, "two");
  ASSERT_EQ(buf.PopLine(&line), LineBuffer::Pop::kLine);
  EXPECT_EQ(line, "three");
  EXPECT_EQ(buf.PopLine(&line), LineBuffer::Pop::kNone);
  EXPECT_EQ(buf.size(), 7u);  // "partial" stays buffered
}

TEST(ProtocolLineBufferTest, StripsCarriageReturn) {
  LineBuffer buf(64, 256);
  ASSERT_TRUE(buf.Append("hello\r\n", 7));
  std::string line;
  ASSERT_EQ(buf.PopLine(&line), LineBuffer::Pop::kLine);
  EXPECT_EQ(line, "hello");
}

TEST(ProtocolLineBufferTest, OversizedCompleteLineIsViolation) {
  LineBuffer buf(8, 256);
  std::string data(20, 'x');
  data += "\n";
  ASSERT_TRUE(buf.Append(data.data(), data.size()));
  std::string line;
  EXPECT_EQ(buf.PopLine(&line), LineBuffer::Pop::kOversized);
}

TEST(ProtocolLineBufferTest, OversizedPartialLineReportedEarly) {
  // No terminator yet, but the partial already exceeds the line cap — the
  // buffer must not wait for a newline that may never come.
  LineBuffer buf(8, 256);
  std::string data(16, 'x');
  ASSERT_TRUE(buf.Append(data.data(), data.size()));
  std::string line;
  EXPECT_EQ(buf.PopLine(&line), LineBuffer::Pop::kOversized);
}

TEST(ProtocolLineBufferTest, LineExactlyAtCapIsAccepted) {
  // max_line counts the terminator: 7 payload bytes + '\n' == cap 8.
  LineBuffer buf(8, 256);
  ASSERT_TRUE(buf.Append("1234567\n", 8));
  std::string line;
  ASSERT_EQ(buf.PopLine(&line), LineBuffer::Pop::kLine);
  EXPECT_EQ(line, "1234567");
}

TEST(ProtocolLineBufferTest, AppendRefusesPastBufferCap) {
  LineBuffer buf(8, 16);
  ASSERT_TRUE(buf.Append("12345678", 8));
  ASSERT_TRUE(buf.Append("12345678", 8));
  EXPECT_FALSE(buf.Append("x", 1));
  EXPECT_EQ(buf.size(), 16u);  // refused append left the buffer unchanged
}

// ---------------------------------------------------------------------------
// ParseJson
// ---------------------------------------------------------------------------

JsonValue MustParse(const std::string& text) {
  JsonValue v;
  std::string error;
  bool ok = ParseJson(text, kMaxJsonDepth, &v, &error);
  EXPECT_TRUE(ok) << text << " -> " << error;
  return v;
}

std::string ParseError(const std::string& text,
                       size_t depth = kMaxJsonDepth) {
  JsonValue v;
  std::string error;
  bool ok = ParseJson(text, depth, &v, &error);
  EXPECT_FALSE(ok) << text << " unexpectedly parsed";
  return error;
}

TEST(ProtocolJsonTest, ParsesScalars) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_TRUE(MustParse("true").as_bool());
  EXPECT_FALSE(MustParse("false").as_bool());
  EXPECT_DOUBLE_EQ(MustParse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(MustParse("-1.5e2").as_number(), -150.0);
  EXPECT_EQ(MustParse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(MustParse("  \"ws\"  ").as_string(), "ws");
}

TEST(ProtocolJsonTest, ParsesContainersAndFind) {
  JsonValue v = MustParse("{\"a\":[1,2,3],\"b\":{\"c\":true}}");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[2].as_number(), 3.0);
  const JsonValue* b = v.Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_NE(b->Find("c"), nullptr);
  EXPECT_TRUE(b->Find("c")->as_bool());
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(ProtocolJsonTest, DecodesEscapes) {
  JsonValue v = MustParse("\"a\\n\\t\\\"\\\\\\/b\"");
  EXPECT_EQ(v.as_string(), "a\n\t\"\\/b");
}

TEST(ProtocolJsonTest, DecodesUnicodeEscapes) {
  // \u0041 = 'A'; \u00e9 = e-acute (2-byte UTF-8); \u20ac = euro (3-byte).
  EXPECT_EQ(MustParse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(MustParse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(MustParse("\"\\u20ac\"").as_string(), "\xe2\x82\xac");
}

TEST(ProtocolJsonTest, DecodesSurrogatePairs) {
  // U+1F600 as \ud83d\ude00 -> 4-byte UTF-8.
  EXPECT_EQ(MustParse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
  // A lone high surrogate is an error, not silent garbage.
  ParseError("\"\\ud83d\"");
}

TEST(ProtocolJsonTest, RejectsUnescapedControlCharacters) {
  ParseError("\"a\tb\"");  // raw tab inside a string
}

TEST(ProtocolJsonTest, RejectsTrailingGarbage) {
  std::string error = ParseError("{} extra");
  EXPECT_NE(error.find("byte"), std::string::npos) << error;
}

TEST(ProtocolJsonTest, RejectsMalformedDocuments) {
  ParseError("");
  ParseError("{");
  ParseError("[1,]");
  ParseError("{\"a\":}");
  ParseError("{'a':1}");
  ParseError("nul");
}

TEST(ProtocolJsonTest, EnforcesDepthLimit) {
  // Depth kMaxJsonDepth parses; one more level fails — the stack bound
  // behind "[[[[..." bombs.
  std::string at_limit(kMaxJsonDepth, '[');
  at_limit += std::string(kMaxJsonDepth, ']');
  MustParse(at_limit);
  std::string over(kMaxJsonDepth + 1, '[');
  over += std::string(kMaxJsonDepth + 1, ']');
  ParseError(over);
}

TEST(ProtocolJsonTest, DumpRoundTripsRequestIds) {
  // Ids are echoed by re-serializing the parsed value: every JSON type a
  // client might use must survive Dump() -> ParseJson().
  for (const char* id : {"null", "true", "42", "\"req-7\"", "[1,\"a\"]",
                         "{\"k\":1}"}) {
    JsonValue v = MustParse(id);
    JsonValue again = MustParse(v.Dump());
    EXPECT_EQ(again.Dump(), v.Dump()) << id;
  }
}

TEST(ProtocolJsonTest, JsonNumberFormatsIntegersPlainly) {
  EXPECT_EQ(JsonNumber(0), "0");
  EXPECT_EQ(JsonNumber(42), "42");
  EXPECT_EQ(JsonNumber(-3), "-3");
  EXPECT_EQ(JsonNumber(2.5), "2.5");
  // Non-finite values cannot appear in JSON.
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "0");
}

TEST(ProtocolJsonTest, JsonEscapeHandlesControlAndQuotes) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

// ---------------------------------------------------------------------------
// ParseWireRequest
// ---------------------------------------------------------------------------

constexpr char kQuery[] = "node a Product\\nnode b Review\\nedge b a "
                          "reviewOf\\noutput a";

std::string WhyLine(const std::string& extra = "") {
  return std::string("{\"id\":7,\"question\":\"why\",\"query\":\"") + kQuery +
         "\",\"entities\":[1,2]" + extra + "}";
}

TEST(ProtocolWireRequestTest, ParsesFullWhyRequest) {
  WireRequest wr;
  std::string error;
  std::string line = WhyLine(
      ",\"graph\":\"g1\",\"target_k\":3,\"algo\":\"exact\","
      "\"deadline_ms\":250,\"budget\":4.5,\"guard\":2,"
      "\"semantics\":\"sim\",\"max_mbs\":1000");
  ASSERT_TRUE(ParseWireRequest(line, &wr, &error)) << error;
  EXPECT_EQ(wr.id_json, "7");
  EXPECT_EQ(wr.graph, "g1");
  EXPECT_FALSE(wr.is_stats);
  EXPECT_EQ(wr.request.kind, RequestKind::kWhy);
  ASSERT_EQ(wr.request.entities.size(), 2u);
  EXPECT_EQ(wr.request.entities[0], 1u);
  EXPECT_EQ(wr.request.target_k, 3u);
  EXPECT_EQ(wr.request.algo, AlgoChoice::kExact);
  EXPECT_DOUBLE_EQ(wr.request.deadline_ms, 250.0);
  EXPECT_DOUBLE_EQ(wr.request.config.budget, 4.5);
  EXPECT_EQ(wr.request.config.guard_m, 2u);
  EXPECT_EQ(wr.request.config.semantics, MatchSemantics::kSimulation);
  EXPECT_EQ(wr.request.config.max_mbs, 1000u);
  // The wire default exact-enumeration ceiling is always stamped.
  EXPECT_DOUBLE_EQ(wr.request.config.exact_time_limit_ms, kExactTimeLimitMs);
}

TEST(ProtocolWireRequestTest, IdSurvivesValidationFailure) {
  // The error response must echo the id even when the request is invalid —
  // the id is extracted before validation.
  WireRequest wr;
  std::string error;
  EXPECT_FALSE(ParseWireRequest(
      "{\"id\":\"abc\",\"question\":\"nonsense\"}", &wr, &error));
  EXPECT_EQ(wr.id_json, "\"abc\"");
  EXPECT_NE(error.find("nonsense"), std::string::npos);
}

TEST(ProtocolWireRequestTest, MissingIdEchoesNull) {
  WireRequest wr;
  std::string error;
  ASSERT_TRUE(
      ParseWireRequest("{\"question\":\"stats\"}", &wr, &error)) << error;
  EXPECT_EQ(wr.id_json, "null");
  EXPECT_TRUE(wr.is_stats);
}

TEST(ProtocolWireRequestTest, RejectsMissingOrEmptyQuery) {
  WireRequest wr;
  std::string error;
  EXPECT_FALSE(ParseWireRequest("{\"question\":\"whyempty\"}", &wr, &error));
  EXPECT_FALSE(ParseWireRequest(
      "{\"question\":\"whyempty\",\"query\":\"\"}", &wr, &error));
  EXPECT_FALSE(ParseWireRequest(
      "{\"question\":\"whyempty\",\"query\":\"# no nodes\"}", &wr, &error));
}

TEST(ProtocolWireRequestTest, RequiresEntitiesForWhyAndWhyNot) {
  WireRequest wr;
  std::string error;
  std::string base = "{\"question\":\"%K\",\"query\":\"node a Product\"}";
  for (const char* k : {"why", "whynot"}) {
    std::string line = base;
    line.replace(line.find("%K"), 2, k);
    EXPECT_FALSE(ParseWireRequest(line, &wr, &error)) << k;
  }
  // whyempty/whysomany need none.
  for (const char* k : {"whyempty", "whysomany"}) {
    std::string line = base;
    line.replace(line.find("%K"), 2, k);
    EXPECT_TRUE(ParseWireRequest(line, &wr, &error)) << k << ": " << error;
  }
}

TEST(ProtocolWireRequestTest, ValidatesFieldTypes) {
  WireRequest wr;
  std::string error;
  EXPECT_FALSE(ParseWireRequest("[1,2]", &wr, &error));
  EXPECT_FALSE(ParseWireRequest("{\"question\":42}", &wr, &error));
  EXPECT_FALSE(ParseWireRequest(WhyLine(",\"target_k\":0"), &wr, &error));
  EXPECT_FALSE(ParseWireRequest(WhyLine(",\"target_k\":1.5"), &wr, &error));
  EXPECT_FALSE(ParseWireRequest(WhyLine(",\"algo\":\"magic\""), &wr, &error));
  EXPECT_FALSE(
      ParseWireRequest(WhyLine(",\"semantics\":\"homo\""), &wr, &error));
  EXPECT_FALSE(
      ParseWireRequest(WhyLine(",\"deadline_ms\":-1"), &wr, &error));
  EXPECT_FALSE(ParseWireRequest(WhyLine(",\"budget\":0"), &wr, &error));
  EXPECT_FALSE(
      ParseWireRequest(WhyLine(",\"entities\":[-1]"), &wr, &error));
  EXPECT_FALSE(
      ParseWireRequest(WhyLine(",\"entities\":[\"x\"]"), &wr, &error));
}

TEST(ProtocolWireRequestTest, ClampsMaxMbsToLibraryCeiling) {
  WireRequest wr;
  std::string error;
  ASSERT_TRUE(
      ParseWireRequest(WhyLine(",\"max_mbs\":999999999"), &wr, &error))
      << error;
  EXPECT_EQ(wr.request.config.max_mbs, kMaxMbsVisits);
  ASSERT_TRUE(ParseWireRequest(WhyLine(",\"max_mbs\":100"), &wr, &error));
  EXPECT_EQ(wr.request.config.max_mbs, 100u);
}

TEST(ProtocolWireRequestTest, EnforcesQueryNodeCap) {
  std::string query;
  for (size_t i = 0; i <= kMaxQueryNodes; ++i) {
    query += "node n" + std::to_string(i) + " Product\\n";
  }
  WireRequest wr;
  std::string error;
  std::string line = "{\"question\":\"whyempty\",\"query\":\"" + query + "\"}";
  EXPECT_FALSE(ParseWireRequest(line, &wr, &error));
  EXPECT_NE(error.find("limit"), std::string::npos) << error;
}

TEST(ProtocolWireRequestTest, CountQueryNodesMatchesDsl) {
  EXPECT_EQ(CountQueryNodes("node a Product\nnode b Review\nedge b a r"), 2u);
  EXPECT_EQ(CountQueryNodes("  node a P\n# node in comment? no: '#' first\n"),
            1u);
  EXPECT_EQ(CountQueryNodes("nodes a P\nnodex b Q"), 0u);  // whole token only
  EXPECT_EQ(CountQueryNodes(""), 0u);
}

// ---------------------------------------------------------------------------
// The {"op":"update"} wire verb
// ---------------------------------------------------------------------------

TEST(ProtocolWireUpdateTest, ParsesUpdateRequest) {
  WireRequest wr;
  std::string error;
  ASSERT_TRUE(ParseWireRequest(
      "{\"id\":3,\"op\":\"update\",\"graph\":\"g1\","
      "\"ops\":[\"AN Review\",\"SA 0 rating=i:5\",\"DE 1 2 next\"]}",
      &wr, &error))
      << error;
  EXPECT_TRUE(wr.is_update);
  EXPECT_FALSE(wr.is_stats);
  EXPECT_EQ(wr.id_json, "3");
  EXPECT_EQ(wr.graph, "g1");
  ASSERT_EQ(wr.update.size(), 3u);
  EXPECT_EQ(wr.update.ops[0].kind, UpdateOp::kAddNode);
  EXPECT_EQ(wr.update.ops[0].name, "Review");
  EXPECT_EQ(wr.update.ops[1].kind, UpdateOp::kSetAttr);
  EXPECT_EQ(wr.update.ops[1].value.as_int(), 5);
  EXPECT_EQ(wr.update.ops[2].kind, UpdateOp::kDeleteEdge);
}

TEST(ProtocolWireUpdateTest, RejectsMalformedUpdateRequests) {
  WireRequest wr;
  std::string error;
  // Unknown verb.
  EXPECT_FALSE(ParseWireRequest(
      "{\"op\":\"mutate\",\"ops\":[\"AN a\"]}", &wr, &error));
  // A request is a question or an update, never both.
  EXPECT_FALSE(ParseWireRequest(
      "{\"op\":\"update\",\"question\":\"why\",\"ops\":[\"AN a\"]}", &wr,
      &error));
  // ops must be a non-empty array of strings.
  EXPECT_FALSE(ParseWireRequest("{\"op\":\"update\"}", &wr, &error));
  EXPECT_FALSE(ParseWireRequest(
      "{\"op\":\"update\",\"ops\":[]}", &wr, &error));
  EXPECT_FALSE(ParseWireRequest(
      "{\"op\":\"update\",\"ops\":[42]}", &wr, &error));
  // Mnemonic lines go through the real batch parser.
  EXPECT_FALSE(ParseWireRequest(
      "{\"op\":\"update\",\"ops\":[\"XX nonsense\"]}", &wr, &error));
  EXPECT_NE(error.find("op"), std::string::npos) << error;
}

TEST(ProtocolWireUpdateTest, EnforcesOpCapAcrossEmbeddedNewlines) {
  // One array element may hold several batch-file lines; the cap counts
  // parsed ops, not array elements, so newline-packing cannot slip it.
  std::string packed;
  for (size_t i = 0; i < kMaxUpdateOps + 1; ++i) packed += "AN a\\n";
  WireRequest wr;
  std::string error;
  EXPECT_FALSE(ParseWireRequest(
      "{\"op\":\"update\",\"ops\":[\"" + packed + "\"]}", &wr, &error));
  EXPECT_NE(error.find("ops"), std::string::npos) << error;
}

TEST(ProtocolWireUpdateTest, EncodesAppliedAndFailedUpdates) {
  UpdateResult result;
  result.delta.nodes_added = 2;
  result.delta.edges_added = 1;
  result.delta.attrs_set = 3;
  JsonValue ok = MustParse(EncodeUpdateResponse("7", true, 4, result));
  EXPECT_DOUBLE_EQ(ok.Find("id")->as_number(), 7.0);
  EXPECT_EQ(ok.Find("status")->as_string(), "ok");
  EXPECT_DOUBLE_EQ(ok.Find("generation")->as_number(), 4.0);
  const JsonValue* applied = ok.Find("applied");
  ASSERT_NE(applied, nullptr);
  EXPECT_DOUBLE_EQ(applied->Find("nodes_added")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(applied->Find("edges_added")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(applied->Find("attrs_set")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(applied->Find("nodes_deleted")->as_number(), 0.0);

  UpdateResult failed;
  failed.status = UpdateStatus::kFrozen;
  failed.error = "snapshot-backed graph";
  JsonValue bad = MustParse(EncodeUpdateResponse("7", false, 0, failed));
  EXPECT_EQ(bad.Find("status")->as_string(), "bad_request");
  EXPECT_EQ(bad.Find("update_status")->as_string(), "frozen");
  EXPECT_EQ(bad.Find("error")->as_string(), "snapshot-backed graph");
}

// ---------------------------------------------------------------------------
// Encoders
// ---------------------------------------------------------------------------

TEST(ProtocolEncodersTest, RejectedCarriesRetryAfter) {
  std::string line = EncodeRejected("\"r1\"", kRetryAfterMs);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  JsonValue v = MustParse(line);
  EXPECT_EQ(v.Find("id")->as_string(), "r1");
  EXPECT_EQ(v.Find("status")->as_string(), "rejected");
  EXPECT_DOUBLE_EQ(v.Find("retry_after_ms")->as_number(), kRetryAfterMs);
}

TEST(ProtocolEncodersTest, ErrorLineEchoesIdAndEscapes) {
  std::string line = EncodeErrorLine("17", "bad_request", "broke \"here\"");
  JsonValue v = MustParse(line);
  EXPECT_DOUBLE_EQ(v.Find("id")->as_number(), 17.0);
  EXPECT_EQ(v.Find("status")->as_string(), "bad_request");
  EXPECT_EQ(v.Find("error")->as_string(), "broke \"here\"");
}

TEST(ProtocolEncodersTest, OkResponseParsesBackWithAnswerAndStats) {
  Figure1 f = MakeFigure1();
  ServiceResponse r;
  r.status = ResponseStatus::kOk;
  r.latency_ms = 12.5;
  r.cache_hit = true;
  r.base_answers = {1, 2, 3};
  r.answer.found = true;
  r.answer.cost = 2.0;
  r.answer.rewritten = f.query;

  std::string line = EncodeResponse("null", RequestKind::kWhy, r, f.graph);
  JsonValue v = MustParse(line);
  EXPECT_EQ(v.Find("status")->as_string(), "ok");
  EXPECT_FALSE(v.Find("truncated")->as_bool());
  EXPECT_DOUBLE_EQ(v.Find("base_answers")->as_number(), 3.0);
  const JsonValue* answer = v.Find("answer");
  ASSERT_NE(answer, nullptr);
  EXPECT_TRUE(answer->Find("found")->as_bool());
  EXPECT_DOUBLE_EQ(answer->Find("cost")->as_number(), 2.0);
  // The rewritten query is DSL text that parses back against the graph.
  const JsonValue* rewritten = answer->Find("rewritten");
  ASSERT_NE(rewritten, nullptr);
  EXPECT_TRUE(ParseQuery(rewritten->as_string(), f.graph, nullptr)
                  .has_value());
  const JsonValue* stats = v.Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_DOUBLE_EQ(stats->Find("latency_ms")->as_number(), 12.5);
  EXPECT_TRUE(stats->Find("cache_hit")->as_bool());
}

TEST(ProtocolEncodersTest, WhySoManyReportsBeforeAfter) {
  Figure1 f = MakeFigure1();
  ServiceResponse r;
  r.status = ResponseStatus::kOk;
  r.why_so_many.found = true;
  r.why_so_many.before = 9;
  r.why_so_many.after = 2;
  r.why_so_many.rewritten = f.query;
  std::string line =
      EncodeResponse("1", RequestKind::kWhySoMany, r, f.graph);
  JsonValue v = MustParse(line);
  const JsonValue* answer = v.Find("answer");
  ASSERT_NE(answer, nullptr);
  EXPECT_DOUBLE_EQ(answer->Find("before")->as_number(), 9.0);
  EXPECT_DOUBLE_EQ(answer->Find("after")->as_number(), 2.0);
}

TEST(ProtocolEncodersTest, NonOkStatusesDispatchToErrorShapes) {
  Figure1 f = MakeFigure1();
  ServiceResponse r;
  r.status = ResponseStatus::kRejected;
  JsonValue v =
      MustParse(EncodeResponse("2", RequestKind::kWhy, r, f.graph));
  EXPECT_EQ(v.Find("status")->as_string(), "rejected");
  ASSERT_NE(v.Find("retry_after_ms"), nullptr);

  r.status = ResponseStatus::kBadRequest;
  r.error = "no such node";
  v = MustParse(EncodeResponse("2", RequestKind::kWhy, r, f.graph));
  EXPECT_EQ(v.Find("status")->as_string(), "bad_request");
  EXPECT_EQ(v.Find("error")->as_string(), "no such node");

  r.status = ResponseStatus::kShutdown;
  r.error.clear();
  v = MustParse(EncodeResponse("2", RequestKind::kWhy, r, f.graph));
  EXPECT_EQ(v.Find("status")->as_string(), "shutdown");
}

TEST(ProtocolEncodersTest, StatsResponseEmbedsDocumentVerbatim) {
  std::string line = EncodeStatsResponse("null", "{\"server\":{}}");
  JsonValue v = MustParse(line);
  ASSERT_NE(v.Find("stats"), nullptr);
  EXPECT_TRUE(v.Find("stats")->is_object());
}

}  // namespace
}  // namespace whyq::server
