#include <gtest/gtest.h>

#include "gen/figure1.h"
#include "query/query.h"
#include "query/query_parser.h"

namespace whyq {
namespace {

// A small star query: u0* -a-> u1, u0 -b-> u2, u2 -c-> u3 (path of length 2
// from output to u3).
Query StarQuery() {
  Query q;
  QNodeId u0 = q.AddNode(0);
  QNodeId u1 = q.AddNode(1);
  QNodeId u2 = q.AddNode(2);
  QNodeId u3 = q.AddNode(3);
  q.AddEdge(u0, u1, 0);
  q.AddEdge(u0, u2, 1);
  q.AddEdge(u2, u3, 2);
  q.SetOutput(u0);
  return q;
}

TEST(QueryTest, SizeCountsLiteralsAndEdges) {
  Query q = StarQuery();
  EXPECT_EQ(q.Size(), 3u);
  q.AddLiteral(0, Literal{0, CompareOp::kEq, Value(int64_t{1})});
  EXPECT_EQ(q.Size(), 4u);
}

TEST(QueryTest, DistancesAndDiameter) {
  Query q = StarQuery();
  EXPECT_EQ(q.DistanceToOutput(0), 0u);
  EXPECT_EQ(q.DistanceToOutput(1), 1u);
  EXPECT_EQ(q.DistanceToOutput(2), 1u);
  EXPECT_EQ(q.DistanceToOutput(3), 2u);
  EXPECT_EQ(q.Diameter(), 3u);  // u1 .. u3
}

TEST(QueryTest, OutputCentrality) {
  Query q = StarQuery();
  EXPECT_DOUBLE_EQ(q.OutputCentrality(0), 3.0);        // d_Q/(0+1)
  EXPECT_DOUBLE_EQ(q.OutputCentrality(1), 1.5);        // d_Q/(1+1)
  EXPECT_DOUBLE_EQ(q.OutputCentrality(3), 1.0);        // d_Q/(2+1)
}

TEST(QueryTest, Figure1CentralitiesMatchPaper) {
  // Example 4: d_Q = 2, oc(Cellphone) = 2, neighbors have oc = 1.
  Figure1 f = MakeFigure1();
  EXPECT_EQ(f.query.Diameter(), 2u);
  EXPECT_DOUBLE_EQ(f.query.OutputCentrality(f.query.output()), 2.0);
  EXPECT_DOUBLE_EQ(f.query.OutputCentrality(1), 1.0);
}

TEST(QueryTest, DisconnectedAfterRemoveEdge) {
  Query q = StarQuery();
  EXPECT_TRUE(q.IsConnected());
  ASSERT_TRUE(q.RemoveEdge(2, 3, 2));
  EXPECT_FALSE(q.IsConnected());
  EXPECT_EQ(q.DistanceToOutput(3), Query::kUnreachable);
  EXPECT_DOUBLE_EQ(q.OutputCentrality(3), 0.0);
  // Output component excludes the stranded node.
  std::vector<QNodeId> comp = q.OutputComponent();
  EXPECT_EQ(comp.size(), 3u);
}

TEST(QueryTest, RemoveEdgeRequiresExactMatch) {
  Query q = StarQuery();
  EXPECT_FALSE(q.RemoveEdge(0, 1, 99));  // wrong label
  EXPECT_FALSE(q.RemoveEdge(1, 0, 0));   // wrong direction
  EXPECT_TRUE(q.RemoveEdge(0, 1, 0));
  EXPECT_EQ(q.edge_count(), 2u);
}

TEST(QueryTest, LiteralMutations) {
  Query q = StarQuery();
  Literal l{0, CompareOp::kLe, Value(int64_t{5})};
  q.AddLiteral(1, l);
  Literal l2{0, CompareOp::kLe, Value(int64_t{9})};
  EXPECT_TRUE(q.ReplaceLiteral(1, l, l2));
  EXPECT_FALSE(q.ReplaceLiteral(1, l, l2));  // original gone
  EXPECT_TRUE(q.RemoveLiteral(1, l2));
  EXPECT_TRUE(q.node(1).literals.empty());
}

TEST(QueryTest, ValidateCatchesProblems) {
  Query empty;
  std::string err;
  EXPECT_FALSE(empty.Validate(&err));
  Query no_output;
  no_output.AddNode(0);
  EXPECT_FALSE(no_output.Validate(&err));
  EXPECT_NE(err.find("output"), std::string::npos);
}

TEST(QueryTest, MultiOutput) {
  Query q = StarQuery();
  q.AddOutput(2);
  q.AddOutput(2);  // duplicate ignored
  ASSERT_EQ(q.outputs().size(), 2u);
  EXPECT_EQ(q.outputs()[0], q.output());
}

TEST(QueryTest, UndirectedNeighbors) {
  Query q = StarQuery();
  std::vector<QNodeId> n0 = q.UndirectedNeighbors(0);
  EXPECT_EQ(n0.size(), 2u);
  std::vector<QNodeId> n3 = q.UndirectedNeighbors(3);
  ASSERT_EQ(n3.size(), 1u);
  EXPECT_EQ(n3[0], 2u);
}

TEST(QueryParserTest, ParsesFigure1StyleQuery) {
  Figure1 f = MakeFigure1();
  std::string text =
      "# find pink AT&T Samsung phones\n"
      "node phone Cellphone Price <= i:650\n"
      "node col Color val = s:pink\n"
      "edge phone col color\n"
      "output phone\n";
  std::string err;
  std::optional<Query> q = ParseQuery(text, f.graph, &err);
  ASSERT_TRUE(q.has_value()) << err;
  EXPECT_EQ(q->node_count(), 2u);
  EXPECT_EQ(q->edge_count(), 1u);
  EXPECT_EQ(q->Size(), 3u);
  EXPECT_EQ(q->output(), 0u);
}

TEST(QueryParserTest, RoundTripThroughWriter) {
  Figure1 f = MakeFigure1();
  std::string text = WriteQuery(f.query, f.graph);
  std::string err;
  std::optional<Query> back = ParseQuery(text, f.graph, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->node_count(), f.query.node_count());
  EXPECT_EQ(back->edge_count(), f.query.edge_count());
  EXPECT_EQ(back->Size(), f.query.Size());
  EXPECT_EQ(back->output(), f.query.output());
}

TEST(QueryParserTest, UnknownNamesMatchNothingButParse) {
  Figure1 f = MakeFigure1();
  std::string err;
  std::optional<Query> q =
      ParseQuery("node x Spaceship\noutput x\n", f.graph, &err);
  ASSERT_TRUE(q.has_value()) << err;
  EXPECT_EQ(q->node(0).label, kInvalidSymbol);
}

TEST(QueryParserTest, Errors) {
  Figure1 f = MakeFigure1();
  std::string err;
  EXPECT_FALSE(ParseQuery("node x\n", f.graph, &err).has_value());
  EXPECT_FALSE(
      ParseQuery("node x A\nnode x A\noutput x\n", f.graph, &err)
          .has_value());
  EXPECT_FALSE(
      ParseQuery("node x A\nedge x y r\noutput x\n", f.graph, &err)
          .has_value());
  EXPECT_FALSE(ParseQuery("node x A\noutput y\n", f.graph, &err).has_value());
  EXPECT_FALSE(ParseQuery("node x A\n", f.graph, &err).has_value());
  EXPECT_FALSE(
      ParseQuery("node x A p <> i:1\noutput x\n", f.graph, &err).has_value());
}

TEST(QueryParserTest, ParseCompareOps) {
  EXPECT_EQ(ParseCompareOp("<"), CompareOp::kLt);
  EXPECT_EQ(ParseCompareOp("<="), CompareOp::kLe);
  EXPECT_EQ(ParseCompareOp("="), CompareOp::kEq);
  EXPECT_EQ(ParseCompareOp("=="), CompareOp::kEq);
  EXPECT_EQ(ParseCompareOp(">="), CompareOp::kGe);
  EXPECT_EQ(ParseCompareOp(">"), CompareOp::kGt);
  EXPECT_FALSE(ParseCompareOp("!=").has_value());
}

}  // namespace
}  // namespace whyq
