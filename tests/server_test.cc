// Loopback end-to-end tests for the whyq_server daemon: a real WhyqServer
// on an ephemeral port driven from blocking client sockets. Covers the ask
// path (id echo), pipelining, protocol errors, admission control under a
// wedged worker, graceful drain, the idle reaper and the connection cap.
// Runs under TSan in CI — the loop thread, worker threads and the test
// thread all interleave here.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/time.h>

#include <chrono>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/net.h"
#include "common/timer.h"
#include "gen/bsbm.h"
#include "gen/figure1.h"
#include "matcher/matcher.h"
#include "query/query_parser.h"
#include "server/json.h"
#include "server/server.h"

namespace whyq::server {
namespace {

/// Blocking loopback client with a receive timeout, so a server bug fails
/// the test instead of hanging it.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    std::string error;
    fd_ = ConnectTcp(port, &error);
    EXPECT_TRUE(fd_.valid()) << error;
    struct timeval tv = {20, 0};
    setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  bool ok() const { return fd_.valid(); }

  bool Send(const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      ssize_t n = send(fd_.get(), data.data() + off, data.size() - off,
                       MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads one newline-terminated line (terminator stripped); false on
  /// EOF or timeout.
  bool ReadLine(std::string* line) {
    for (;;) {
      size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      ssize_t n = recv(fd_.get(), chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// True when the server closed the connection (orderly EOF).
  bool ReadEof() {
    char c;
    return recv(fd_.get(), &c, 1, 0) == 0;
  }

  void Close() { fd_.Reset(); }

 private:
  UniqueFd fd_;
  std::string buf_;
};

JsonValue ParseLine(const std::string& line) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(ParseJson(line, kMaxJsonDepth, &v, &error))
      << line << " -> " << error;
  return v;
}

std::string StatusOf(const JsonValue& v) {
  const JsonValue* s = v.Find("status");
  return s != nullptr && s->is_string() ? s->as_string() : "<none>";
}

class ServerTest : public testing::Test {
 protected:
  ServerTest() {
    Figure1 f = MakeFigure1();
    query_text_ = WriteQuery(f.query, f.graph);
    graph_ = std::make_shared<const Graph>(std::move(f.graph));
    a5_ = f.a5;
    s5_ = f.s5;
  }

  ~ServerTest() override { StopServer(); }

  /// Starts a server over the Figure 1 graph (named "fig1") and runs its
  /// event loop on a background thread.
  void StartServer(ServerConfig cfg) {
    server_ = std::make_unique<WhyqServer>(
        std::vector<std::pair<std::string, std::shared_ptr<const Graph>>>{
            {"fig1", graph_}},
        std::move(cfg));
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
    loop_ = std::thread([this] { rc_ = server_->Run(nullptr); });
  }

  /// Stops the loop (idempotent) and returns Run()'s exit code.
  int StopServer() {
    if (server_ == nullptr) return -1;
    server_->RequestStop();
    if (loop_.joinable()) loop_.join();
    return rc_;
  }

  /// A valid "why" request line against fig1.
  std::string WhyLine(const std::string& id) {
    return "{\"id\":" + id + ",\"question\":\"why\",\"query\":\"" +
           JsonEscape(query_text_) + "\",\"entities\":[" +
           JsonNumber(double(a5_)) + "," + JsonNumber(double(s5_)) +
           "],\"guard\":0}\n";
  }

  /// Polls `pred` until it holds or `ms` elapses.
  template <typename Pred>
  bool WaitUntil(Pred pred, double ms = 10000) {
    Timer t;
    while (!pred()) {
      if (t.ElapsedMillis() > ms) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
  }

  std::shared_ptr<const Graph> graph_;
  std::string query_text_;
  NodeId a5_ = kInvalidNode;
  NodeId s5_ = kInvalidNode;
  std::unique_ptr<WhyqServer> server_;
  std::thread loop_;
  int rc_ = -1;
};

TEST_F(ServerTest, AnswersWhyAndEchoesId) {
  StartServer(ServerConfig{});
  TestClient client(server_->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.Send(WhyLine("\"req-1\"")));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  JsonValue v = ParseLine(line);
  EXPECT_EQ(v.Find("id")->as_string(), "req-1");
  EXPECT_EQ(StatusOf(v), "ok");
  const JsonValue* answer = v.Find("answer");
  ASSERT_NE(answer, nullptr);
  EXPECT_TRUE(answer->Find("found")->as_bool());
  const JsonValue* stats = v.Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->Find("latency_ms")->as_number(), 0.0);
}

TEST_F(ServerTest, PipelinedRequestsAllAnswered) {
  StartServer(ServerConfig{});
  TestClient client(server_->port());
  ASSERT_TRUE(client.ok());
  // One write, several requests. Responses may interleave out of order
  // (workers finish independently), so collect ids as a set.
  std::string burst;
  for (int i = 0; i < 5; ++i) burst += WhyLine(std::to_string(i));
  ASSERT_TRUE(client.Send(burst));
  std::set<int> ids;
  for (int i = 0; i < 5; ++i) {
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line)) << "response " << i;
    JsonValue v = ParseLine(line);
    EXPECT_EQ(StatusOf(v), "ok");
    ids.insert(static_cast<int>(v.Find("id")->as_number()));
  }
  EXPECT_EQ(ids, (std::set<int>{0, 1, 2, 3, 4}));
}

TEST_F(ServerTest, MalformedAndInvalidLinesGetErrors) {
  StartServer(ServerConfig{});
  TestClient client(server_->port());
  ASSERT_TRUE(client.ok());
  std::string line;

  // Not JSON at all: id is unknowable, echoed as null.
  ASSERT_TRUE(client.Send("this is not json\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  JsonValue v = ParseLine(line);
  EXPECT_EQ(StatusOf(v), "bad_request");
  EXPECT_TRUE(v.Find("id")->is_null());

  // Well-formed JSON, invalid request: the id must come back.
  ASSERT_TRUE(client.Send("{\"id\":9,\"question\":\"what\"}\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  v = ParseLine(line);
  EXPECT_EQ(StatusOf(v), "bad_request");
  EXPECT_DOUBLE_EQ(v.Find("id")->as_number(), 9.0);

  // Unknown graph.
  std::string unknown = WhyLine("10");
  unknown.insert(unknown.size() - 2, ",\"graph\":\"nope\"");
  ASSERT_TRUE(client.Send(unknown));
  ASSERT_TRUE(client.ReadLine(&line));
  v = ParseLine(line);
  EXPECT_EQ(StatusOf(v), "bad_request");

  // Whitespace-only lines are ignored, not answered: the next real
  // request's response arrives first.
  ASSERT_TRUE(client.Send("\n   \n" + WhyLine("11")));
  ASSERT_TRUE(client.ReadLine(&line));
  v = ParseLine(line);
  EXPECT_DOUBLE_EQ(v.Find("id")->as_number(), 11.0);
  EXPECT_GE(server_->Snapshot().bad_lines, 3u);
}

TEST_F(ServerTest, UpdateVerbAppliesBatchesAndCountsThem) {
  StartServer(ServerConfig{});
  TestClient client(server_->port());
  ASSERT_TRUE(client.ok());
  std::string line;

  // A valid batch: applied inline, new generation reported.
  ASSERT_TRUE(client.Send(
      "{\"id\":1,\"op\":\"update\",\"graph\":\"fig1\","
      "\"ops\":[\"AN Paper\",\"AN Paper\"]}\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  JsonValue v = ParseLine(line);
  EXPECT_EQ(StatusOf(v), "ok");
  EXPECT_DOUBLE_EQ(v.Find("id")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(v.Find("generation")->as_number(), 1.0);
  const JsonValue* applied = v.Find("applied");
  ASSERT_NE(applied, nullptr);
  EXPECT_DOUBLE_EQ(applied->Find("nodes_added")->as_number(), 2.0);

  // A batch that fails validation: typed rejection, nothing applied.
  ASSERT_TRUE(client.Send(
      "{\"id\":2,\"op\":\"update\",\"graph\":\"fig1\","
      "\"ops\":[\"DN 999999\"]}\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  v = ParseLine(line);
  EXPECT_EQ(StatusOf(v), "bad_request");
  EXPECT_EQ(v.Find("update_status")->as_string(), "no-such-node");

  // Questions keep working against the updated graph.
  ASSERT_TRUE(client.Send(WhyLine("3")));
  ASSERT_TRUE(client.ReadLine(&line));
  v = ParseLine(line);
  EXPECT_EQ(StatusOf(v), "ok");

  ServerSnapshot snap = server_->Snapshot();
  EXPECT_EQ(snap.updates, 1u);
  EXPECT_GE(snap.bad_lines, 1u);
}

TEST_F(ServerTest, StatsQuestionReturnsDocument) {
  StartServer(ServerConfig{});
  TestClient client(server_->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.Send(WhyLine("1")));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  ASSERT_TRUE(client.Send("{\"id\":\"s\",\"question\":\"stats\"}\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  JsonValue v = ParseLine(line);
  EXPECT_EQ(StatusOf(v), "ok");
  const JsonValue* stats = v.Find("stats");
  ASSERT_NE(stats, nullptr);
  const JsonValue* server = stats->Find("server");
  ASSERT_NE(server, nullptr);
  EXPECT_GE(server->Find("requests")->as_number(), 2.0);
  const JsonValue* service = stats->Find("service");
  ASSERT_NE(service, nullptr);
  EXPECT_NE(service->Find("fig1"), nullptr);
}

TEST_F(ServerTest, AdmissionControlRejectsWithRetryHint) {
  // One worker wedged on slow why-so-many questions over a BSBM graph,
  // capacity-2 queue: pipelining a burst must surface immediate
  // "rejected" responses carrying retry_after_ms while the admitted
  // requests still complete.
  auto big = std::make_shared<const Graph>(GenerateBsbm(BsbmConfig{300, 7}));
  Query q;
  {
    std::optional<SymbolId> product = big->node_labels().Find("Product");
    std::optional<SymbolId> review = big->node_labels().Find("Review");
    std::optional<SymbolId> rev_of = big->edge_labels().Find("reviewOf");
    ASSERT_TRUE(product && review && rev_of);
    QNodeId p = q.AddNode(*product);
    QNodeId r = q.AddNode(*review);
    q.AddEdge(r, p, *rev_of);
    q.SetOutput(p);
  }
  ServerConfig cfg;
  cfg.service.workers = 1;
  cfg.service.queue_capacity = 2;
  cfg.service.cache_capacity = 0;
  server_ = std::make_unique<WhyqServer>(
      std::vector<std::pair<std::string, std::shared_ptr<const Graph>>>{
          {"bsbm", big}},
      cfg);
  std::string error;
  ASSERT_TRUE(server_->Start(&error)) << error;
  loop_ = std::thread([this] { rc_ = server_->Run(nullptr); });

  std::string ask = "{\"question\":\"whysomany\",\"query\":\"" +
                    JsonEscape(WriteQuery(q, *big)) +
                    "\",\"target_k\":1,\"budget\":6}\n";
  TestClient client(server_->port());
  ASSERT_TRUE(client.ok());
  std::string burst;
  const int kBurst = 16;
  for (int i = 0; i < kBurst; ++i) burst += ask;
  ASSERT_TRUE(client.Send(burst));

  size_t ok = 0, rejected = 0;
  for (int i = 0; i < kBurst; ++i) {
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line)) << "response " << i;
    JsonValue v = ParseLine(line);
    if (StatusOf(v) == "rejected") {
      ++rejected;
      const JsonValue* retry = v.Find("retry_after_ms");
      ASSERT_NE(retry, nullptr);
      EXPECT_GT(retry->as_number(), 0.0);
    } else {
      EXPECT_EQ(StatusOf(v), "ok");
      ++ok;
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(ok, 0u);
  ServerSnapshot snap = server_->Snapshot();
  EXPECT_EQ(snap.rejected, rejected);
  EXPECT_EQ(snap.admitted, ok);
}

TEST_F(ServerTest, GracefulDrainAnswersEveryAdmittedRequest) {
  StartServer(ServerConfig{});
  TestClient client(server_->port());
  ASSERT_TRUE(client.ok());
  const int kBurst = 6;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) burst += WhyLine(std::to_string(i));
  ASSERT_TRUE(client.Send(burst));
  // Wait until every line is in (admitted or answered), then pull the rug.
  ASSERT_TRUE(WaitUntil(
      [&] { return server_->Snapshot().requests == uint64_t(kBurst); }));
  int rc = StopServer();
  EXPECT_EQ(rc, 0) << "drain must beat the deadline";
  // Every admitted request's response reaches the client, then EOF.
  std::set<int> ids;
  std::string line;
  while (client.ReadLine(&line)) {
    JsonValue v = ParseLine(line);
    EXPECT_EQ(StatusOf(v), "ok");
    ids.insert(static_cast<int>(v.Find("id")->as_number()));
  }
  EXPECT_EQ(ids.size(), size_t(kBurst));
  ServerSnapshot snap = server_->Snapshot();
  EXPECT_EQ(snap.admitted, uint64_t(kBurst));
  EXPECT_EQ(snap.responded, uint64_t(kBurst));
}

// Regression: a drain must end in FIN, not RST. A client that pipelines
// bytes past the shutdown point leaves them unread in the server's
// receive queue (the drain contract stops reading), and close(2) on such
// a socket makes the kernel answer RST — which can discard responses
// still in flight to the client. CloseConn therefore sweeps the receive
// queue before closing. Here one slow exact request keeps the drain
// busy, garbage sent mid-drain sits unread, and the response must
// survive the close, followed by an orderly EOF. (The original failure
// — a python client seeing ECONNRESET mid-burst — reproduces under
// parallel-ctest load in tools/check_server_smoke.sh, which is the
// enforcing check; this test pins the single-connection contract.)
TEST_F(ServerTest, DrainEndsInEofNotResetDespiteUnreadInput) {
  auto big = std::make_shared<const Graph>(GenerateBsbm(BsbmConfig{1200, 7}));
  Query q;
  {
    std::optional<SymbolId> product = big->node_labels().Find("Product");
    std::optional<SymbolId> review = big->node_labels().Find("Review");
    std::optional<SymbolId> offer = big->node_labels().Find("Offer");
    std::optional<SymbolId> rev_of = big->edge_labels().Find("reviewOf");
    std::optional<SymbolId> off_of = big->edge_labels().Find("offerOf");
    ASSERT_TRUE(product && review && offer && rev_of && off_of);
    QNodeId p = q.AddNode(*product);
    QNodeId r = q.AddNode(*review);
    QNodeId o = q.AddNode(*offer);
    q.AddEdge(r, p, *rev_of);
    q.AddEdge(o, p, *off_of);
    q.SetOutput(p);
  }
  ServerConfig cfg;
  cfg.service.workers = 1;
  cfg.service.cache_capacity = 0;
  server_ = std::make_unique<WhyqServer>(
      std::vector<std::pair<std::string, std::shared_ptr<const Graph>>>{
          {"bsbm", big}},
      cfg);
  std::string error;
  ASSERT_TRUE(server_->Start(&error)) << error;
  loop_ = std::thread([this] { rc_ = server_->Run(nullptr); });

  // Exact Why on an actual answer runs ~1 s here (the deadline caps it
  // under slow sanitizers), holding the drain open while we misbehave.
  Matcher m(*big);
  std::vector<NodeId> answers = m.MatchOutput(q);
  ASSERT_FALSE(answers.empty());
  std::string ask = "{\"id\":1,\"question\":\"why\",\"query\":\"" +
                    JsonEscape(WriteQuery(q, *big)) + "\",\"entities\":[" +
                    std::to_string(answers[0]) +
                    "],\"algo\":\"exact\",\"budget\":8,\"guard\":0,"
                    "\"deadline_ms\":2500}\n";
  TestClient client(server_->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.Send(ask));
  ASSERT_TRUE(
      WaitUntil([this] { return server_->Snapshot().admitted == 1; }));

  server_->RequestStop();
  // Let the loop enter the drain (it stops reading within a poll tick),
  // then land bytes it will never read.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  ASSERT_TRUE(client.Send("{\"id\":2,\"question\":\"why\"}\n"));

  // Only read after the server is gone: an RST close would have discarded
  // the delivered-but-unread response from the client's receive queue,
  // while a FIN close leaves it readable followed by a clean EOF.
  EXPECT_EQ(StopServer(), 0);
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line)) << "response destroyed by the close";
  JsonValue v = ParseLine(line);
  EXPECT_EQ(StatusOf(v), "ok");
  EXPECT_EQ(v.Find("id")->as_number(), 1.0);
  EXPECT_FALSE(client.ReadLine(&line)) << "unexpected extra line: " << line;
  EXPECT_TRUE(client.ReadEof()) << "drain ended in RST, not FIN";
}

TEST_F(ServerTest, IdleConnectionsAreReaped) {
  ServerConfig cfg;
  cfg.idle_timeout_ms = 100;
  StartServer(cfg);
  TestClient client(server_->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(WaitUntil([&] { return server_->Snapshot().accepted == 1; }));
  // Never send a byte: the reaper must close us within a few ticks.
  EXPECT_TRUE(client.ReadEof());
  EXPECT_EQ(server_->Snapshot().idle_closed, 1u);
}

TEST_F(ServerTest, ConnectionCapRefusesExtraClients) {
  ServerConfig cfg;
  cfg.max_connections = 1;
  StartServer(cfg);
  TestClient first(server_->port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(WaitUntil([&] { return server_->Snapshot().accepted == 1; }));
  TestClient second(server_->port());
  ASSERT_TRUE(second.ok());
  std::string line;
  ASSERT_TRUE(second.ReadLine(&line));
  JsonValue v = ParseLine(line);
  EXPECT_EQ(StatusOf(v), "rejected");
  EXPECT_TRUE(second.ReadEof());
  EXPECT_EQ(server_->Snapshot().refused, 1u);
  // The surviving connection still serves.
  ASSERT_TRUE(first.Send(WhyLine("1")));
  ASSERT_TRUE(first.ReadLine(&line));
  EXPECT_EQ(StatusOf(ParseLine(line)), "ok");
}

TEST_F(ServerTest, ClientDisconnectMidRequestIsHarmless) {
  StartServer(ServerConfig{});
  {
    TestClient client(server_->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.Send(WhyLine("1")));
    // Close without reading the response: the completion must be dropped
    // on the floor, not crash the loop or leak the connection.
    client.Close();
  }
  ASSERT_TRUE(WaitUntil([&] { return server_->Snapshot().closed == 1; }));
  // The server remains healthy for the next client.
  TestClient client(server_->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.Send(WhyLine("2")));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(StatusOf(ParseLine(line)), "ok");
  EXPECT_EQ(StopServer(), 0);
}

}  // namespace
}  // namespace whyq::server
