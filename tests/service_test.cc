#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "gen/bsbm.h"
#include "gen/figure1.h"
#include "matcher/matcher.h"
#include "query/query_parser.h"
#include "rewrite/operators.h"
#include "service/prepared.h"
#include "service/request.h"
#include "service/service.h"

namespace whyq {
namespace {

// A response's result, flattened for equality checks across execution modes
// (serial vs pooled, cold vs cached).
std::string ResultKey(const Graph& g, const ServiceResponse& r) {
  std::string key = ResponseStatusName(r.status);
  key += "|" + std::to_string(r.base_answers.size());
  key += "|found=" + std::to_string(r.answer.found);
  key += "|ops=" + DescribeOperators(r.answer.ops, g);
  key += "|cost=" + std::to_string(r.answer.cost);
  key += "|close=" + std::to_string(r.answer.eval.closeness);
  key += "|we=" + std::to_string(r.why_empty.found) + "," +
         std::to_string(r.why_empty.cost) + "," +
         DescribeOperators(r.why_empty.ops, g);
  key += "|wsm=" + std::to_string(r.why_so_many.found) + "," +
         std::to_string(r.why_so_many.before) + "->" +
         std::to_string(r.why_so_many.after) + "," +
         DescribeOperators(r.why_so_many.ops, g);
  return key;
}

class ServiceTest : public testing::Test {
 protected:
  ServiceTest() {
    Figure1 f = MakeFigure1();
    query_text_ = WriteQuery(f.query, f.graph);
    graph_ = std::make_shared<const Graph>(std::move(f.graph));
    a5_ = f.a5;
    s5_ = f.s5;
    s8_ = f.s8;
    s9_ = f.s9;
  }

  ServiceRequest Why(std::vector<NodeId> unexpected) {
    ServiceRequest r;
    r.kind = RequestKind::kWhy;
    r.query_text = query_text_;
    r.entities = std::move(unexpected);
    r.config.guard_m = 0;
    return r;
  }

  ServiceRequest WhyNot(std::vector<NodeId> missing) {
    ServiceRequest r;
    r.kind = RequestKind::kWhyNot;
    r.query_text = query_text_;
    r.entities = std::move(missing);
    r.config.budget = 5.0;
    return r;
  }

  std::shared_ptr<const Graph> graph_;
  std::string query_text_;
  NodeId a5_ = kInvalidNode;
  NodeId s5_ = kInvalidNode;
  NodeId s8_ = kInvalidNode;
  NodeId s9_ = kInvalidNode;
};

TEST_F(ServiceTest, ExecutesAllFourKinds) {
  ServiceConfig sc;
  sc.workers = 2;
  WhyqService service(graph_, sc);

  ServiceRequest why = Why({a5_, s5_});
  why.algo = AlgoChoice::kExact;
  ServiceResponse r1 = service.Execute(why);
  EXPECT_EQ(r1.status, ResponseStatus::kOk);
  EXPECT_EQ(r1.base_answers.size(), 3u);
  EXPECT_TRUE(r1.answer.found);
  EXPECT_FALSE(r1.truncated);

  ServiceRequest whynot = WhyNot({s8_, s9_});
  whynot.algo = AlgoChoice::kExact;
  ServiceResponse r2 = service.Execute(whynot);
  EXPECT_EQ(r2.status, ResponseStatus::kOk);
  EXPECT_TRUE(r2.answer.found);

  ServiceRequest we;
  we.kind = RequestKind::kWhyEmpty;
  we.query_text = query_text_;
  ServiceResponse r3 = service.Execute(we);
  EXPECT_EQ(r3.status, ResponseStatus::kOk);
  EXPECT_TRUE(r3.why_empty.found);
  EXPECT_TRUE(r3.why_empty.ops.empty());  // the query is non-empty already

  ServiceRequest wsm;
  wsm.kind = RequestKind::kWhySoMany;
  wsm.query_text = query_text_;
  wsm.target_k = 1;
  ServiceResponse r4 = service.Execute(wsm);
  EXPECT_EQ(r4.status, ResponseStatus::kOk);
}

TEST_F(ServiceTest, BadRequestsAreReported) {
  WhyqService service(graph_, ServiceConfig{1, 4, 4, 0});

  ServiceRequest bad_parse = Why({a5_});
  bad_parse.query_text = "node a\nedge oops";
  ServiceResponse r1 = service.Execute(bad_parse);
  EXPECT_EQ(r1.status, ResponseStatus::kBadRequest);
  EXPECT_FALSE(r1.error.empty());

  ServiceRequest no_entities = Why({});
  ServiceResponse r2 = service.Execute(no_entities);
  EXPECT_EQ(r2.status, ResponseStatus::kBadRequest);

  ServiceRequest out_of_range = Why({static_cast<NodeId>(1u << 30)});
  ServiceResponse r3 = service.Execute(out_of_range);
  EXPECT_EQ(r3.status, ResponseStatus::kBadRequest);

  StatsSnapshot s = service.Stats();
  EXPECT_EQ(s.bad_requests, 3u);
}

// The determinism invariant the pool must preserve: N workers racing over
// the same mixed workload produce responses identical to serial Execute().
// Run under TSan this doubles as the data-race stress test.
TEST_F(ServiceTest, PooledMatchesSerialByteForByte) {
  std::vector<ServiceRequest> workload;
  for (int i = 0; i < 6; ++i) {
    workload.push_back(Why({a5_, s5_}));
    workload.push_back(WhyNot({s8_, s9_}));
    ServiceRequest we;
    we.kind = RequestKind::kWhyEmpty;
    we.query_text = query_text_;
    workload.push_back(we);
    ServiceRequest wsm;
    wsm.kind = RequestKind::kWhySoMany;
    wsm.query_text = query_text_;
    wsm.target_k = 2;
    workload.push_back(wsm);
  }

  // Serial baseline on a fresh service (fresh cache).
  std::vector<std::string> expected;
  {
    WhyqService serial(graph_, ServiceConfig{1, 64, 8, 0});
    for (const ServiceRequest& req : workload) {
      expected.push_back(ResultKey(*graph_, serial.Execute(req)));
    }
  }

  // Pooled, repeated a few times to give the scheduler room to interleave.
  for (size_t workers : {2u, 4u}) {
    WhyqService pooled(graph_, ServiceConfig{workers, 64, 8, 0});
    std::vector<std::future<ServiceResponse>> futures;
    for (const ServiceRequest& req : workload) {
      std::optional<std::future<ServiceResponse>> f = pooled.Submit(req);
      ASSERT_TRUE(f.has_value());
      futures.push_back(std::move(*f));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      ServiceResponse r = futures[i].get();
      EXPECT_EQ(ResultKey(*graph_, r), expected[i])
          << "workers=" << workers << " request " << i;
    }
    StatsSnapshot s = pooled.Stats();
    EXPECT_EQ(s.completed, workload.size());
    EXPECT_EQ(s.truncated, 0u);
  }
}

TEST_F(ServiceTest, CacheHitsAndIdenticalResults) {
  WhyqService service(graph_, ServiceConfig{1, 16, 8, 0});
  ServiceRequest req = Why({a5_, s5_});
  ServiceResponse cold = service.Execute(req);
  ServiceResponse warm = service.Execute(req);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(ResultKey(*graph_, cold), ResultKey(*graph_, warm));
  StatsSnapshot s = service.Stats();
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_EQ(service.cache_size(), 1u);
}

TEST_F(ServiceTest, CacheKeyedBySemanticsAndPaths) {
  WhyqService service(graph_, ServiceConfig{1, 16, 8, 0});
  ServiceRequest req = Why({a5_, s5_});
  service.Execute(req);
  ServiceRequest other = req;
  other.config.path_index_paths = 3;  // different artifact: different key
  ServiceResponse r = service.Execute(other);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(service.cache_size(), 2u);
}

TEST_F(ServiceTest, CacheDisabledWhenCapacityZero) {
  WhyqService service(graph_, ServiceConfig{1, 16, 0, 0});
  ServiceRequest req = Why({a5_, s5_});
  service.Execute(req);
  ServiceResponse r = service.Execute(req);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(service.cache_size(), 0u);
}

TEST_F(ServiceTest, LruEvictsOldestPreparedQuery) {
  PreparedQueryCache cache(2);
  auto put = [&](const std::string& key) {
    bool complete = true;
    std::optional<Query> q = ParseQuery(query_text_, *graph_, nullptr);
    ASSERT_TRUE(q.has_value());
    cache.Put(key, PrepareQuery(*graph_, std::move(*q),
                                MatchSemantics::kIsomorphism, 4, nullptr,
                                &complete));
  };
  put("a");
  put("b");
  EXPECT_NE(cache.Get("a"), nullptr);  // touch: "b" is now LRU
  put("c");
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
}

TEST_F(ServiceTest, BackpressureRejectsWhenQueueFull) {
  // One worker wedged on slow requests + capacity-2 queue: further submits
  // must reject immediately, not block.
  ServiceConfig sc{1, 2, 0, 0};
  auto big = std::make_shared<const Graph>(GenerateBsbm(BsbmConfig{300, 7}));
  WhyqService service(big, sc);
  Query q;
  {
    std::optional<SymbolId> product = big->node_labels().Find("Product");
    std::optional<SymbolId> review = big->node_labels().Find("Review");
    std::optional<SymbolId> rev_of = big->edge_labels().Find("reviewOf");
    ASSERT_TRUE(product && review && rev_of);
    QNodeId p = q.AddNode(*product);
    QNodeId r = q.AddNode(*review);
    q.AddEdge(r, p, *rev_of);
    q.SetOutput(p);
  }
  ServiceRequest req;
  req.kind = RequestKind::kWhySoMany;
  req.query_text = WriteQuery(q, *big);
  req.target_k = 1;
  req.config.budget = 6.0;

  std::vector<std::future<ServiceResponse>> accepted;
  size_t rejections = 0;
  // Keep submitting until the bounded queue pushes back.
  for (int i = 0; i < 64 && rejections == 0; ++i) {
    std::optional<std::future<ServiceResponse>> f = service.Submit(req);
    if (f.has_value()) {
      accepted.push_back(std::move(*f));
    } else {
      ++rejections;
    }
  }
  EXPECT_GT(rejections, 0u);
  for (auto& f : accepted) {
    EXPECT_EQ(f.get().status, ResponseStatus::kOk);
  }
  EXPECT_EQ(service.Stats().rejected, rejections);
}

TEST_F(ServiceTest, SubmitAfterStopResolvesShutdown) {
  WhyqService service(graph_, ServiceConfig{1, 4, 4, 0});
  service.Stop();
  std::optional<std::future<ServiceResponse>> f = service.Submit(Why({a5_}));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->get().status, ResponseStatus::kShutdown);
}

// The non-blocking admission path the daemon sits on: a full queue returns
// kQueueFull immediately and the callback never fires for rejected
// requests, while every accepted request's callback fires exactly once.
TEST_F(ServiceTest, TrySubmitReportsQueueFullWithoutInvokingCallback) {
  ServiceConfig sc{1, 2, 0, 0};
  auto big = std::make_shared<const Graph>(GenerateBsbm(BsbmConfig{300, 7}));
  WhyqService service(big, sc);
  Query q;
  {
    std::optional<SymbolId> product = big->node_labels().Find("Product");
    std::optional<SymbolId> review = big->node_labels().Find("Review");
    std::optional<SymbolId> rev_of = big->edge_labels().Find("reviewOf");
    ASSERT_TRUE(product && review && rev_of);
    QNodeId p = q.AddNode(*product);
    QNodeId r = q.AddNode(*review);
    q.AddEdge(r, p, *rev_of);
    q.SetOutput(p);
  }
  ServiceRequest req;
  req.kind = RequestKind::kWhySoMany;
  req.query_text = WriteQuery(q, *big);
  req.target_k = 1;
  req.config.budget = 6.0;

  std::atomic<size_t> delivered{0};
  size_t accepted = 0;
  size_t rejections = 0;
  for (int i = 0; i < 64 && rejections == 0; ++i) {
    SubmitResult sr = service.TrySubmit(
        req, [&delivered](ServiceResponse r) {
          EXPECT_EQ(r.status, ResponseStatus::kOk);
          delivered.fetch_add(1);
        });
    if (sr == SubmitResult::kAccepted) {
      ++accepted;
    } else {
      ASSERT_EQ(sr, SubmitResult::kQueueFull);
      ++rejections;
    }
  }
  EXPECT_GT(rejections, 0u);
  EXPECT_GT(accepted, 0u);

  // WaitDrained blocks until every accepted callback has been delivered —
  // the drain gauge the daemon's shutdown path relies on.
  EXPECT_TRUE(service.WaitDrained(60000));
  EXPECT_EQ(delivered.load(), accepted);
  EXPECT_EQ(service.InFlight(), 0u);
  EXPECT_EQ(service.Stats().rejected, rejections);
}

TEST_F(ServiceTest, TrySubmitAfterStopReportsShutdown) {
  WhyqService service(graph_, ServiceConfig{1, 4, 4, 0});
  service.Stop();
  bool fired = false;
  SubmitResult sr =
      service.TrySubmit(Why({a5_}), [&fired](ServiceResponse) {
        fired = true;
      });
  EXPECT_EQ(sr, SubmitResult::kShutdown);
  EXPECT_FALSE(fired);
  EXPECT_EQ(service.InFlight(), 0u);
}

TEST_F(ServiceTest, WaitDrainedIsImmediateWhenIdle) {
  WhyqService service(graph_, ServiceConfig{2, 16, 4, 0});
  EXPECT_EQ(service.InFlight(), 0u);
  EXPECT_TRUE(service.WaitDrained(0));

  // A mixed Submit/TrySubmit load drains to zero.
  std::vector<std::future<ServiceResponse>> futures;
  std::atomic<size_t> delivered{0};
  for (int i = 0; i < 4; ++i) {
    std::optional<std::future<ServiceResponse>> f = service.Submit(Why({a5_}));
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
    ASSERT_EQ(service.TrySubmit(Why({a5_}),
                                [&delivered](ServiceResponse) {
                                  delivered.fetch_add(1);
                                }),
              SubmitResult::kAccepted);
  }
  EXPECT_TRUE(service.WaitDrained(60000));
  EXPECT_EQ(service.InFlight(), 0u);
  EXPECT_EQ(delivered.load(), 4u);
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, ResponseStatus::kOk);
  }
}

// Deadline behavior on a graph big enough that the full question would take
// far longer than the deadline: the response must come back promptly (the
// worker unwinds cooperatively) and be flagged truncated.
TEST_F(ServiceTest, TightDeadlineTruncatesInsteadOfHanging) {
  auto big = std::make_shared<const Graph>(GenerateBsbm(BsbmConfig{2000, 7}));
  Query q;
  {
    std::optional<SymbolId> product = big->node_labels().Find("Product");
    std::optional<SymbolId> review = big->node_labels().Find("Review");
    std::optional<SymbolId> offer = big->node_labels().Find("Offer");
    std::optional<SymbolId> rev_of = big->edge_labels().Find("reviewOf");
    std::optional<SymbolId> off_of = big->edge_labels().Find("offerOf");
    ASSERT_TRUE(product && review && offer && rev_of && off_of);
    QNodeId p = q.AddNode(*product);
    QNodeId r = q.AddNode(*review);
    QNodeId o = q.AddNode(*offer);
    q.AddEdge(r, p, *rev_of);
    q.AddEdge(o, p, *off_of);
    q.SetOutput(p);
  }
  WhyqService service(big, ServiceConfig{2, 16, 4, 0});

  // Exact Why over this query enumerates maximal bounded sets with an
  // isomorphism verification per set — seconds of work, far past the
  // deadline. The entities must be actual answers; any reviewed+offered
  // product is one.
  Matcher m(*big);
  std::vector<NodeId> answers = m.MatchOutput(q);
  ASSERT_GE(answers.size(), 2u);

  ServiceRequest req;
  req.kind = RequestKind::kWhy;
  req.query_text = WriteQuery(q, *big);
  req.entities = {answers[0], answers[1]};
  req.algo = AlgoChoice::kExact;
  req.config.budget = 8.0;
  req.config.guard_m = 0;
  req.deadline_ms = 15;

  Timer t;
  std::optional<std::future<ServiceResponse>> f = service.Submit(req);
  ASSERT_TRUE(f.has_value());
  ServiceResponse r = f->get();
  double elapsed = t.ElapsedMillis();
  EXPECT_EQ(r.status, ResponseStatus::kOk);
  EXPECT_TRUE(r.truncated);
  // Generous bound: polling granularity + preparation make the response a
  // little late, but nowhere near the seconds the full question takes.
  EXPECT_LT(elapsed, 40 * req.deadline_ms);
  EXPECT_EQ(service.Stats().truncated, 1u);

  // The same question without a deadline (greedy variant, so the test stays
  // fast) completes un-truncated, proving the truncation above came from the
  // deadline, not the workload.
  req.deadline_ms = 0;
  req.algo = AlgoChoice::kAuto;
  ServiceResponse full = service.Execute(req);
  EXPECT_EQ(full.status, ResponseStatus::kOk);
  EXPECT_FALSE(full.truncated);
}

TEST_F(ServiceTest, CancelTokenBasics) {
  CancelToken t;
  EXPECT_FALSE(t.Cancelled());
  EXPECT_FALSE(t.Expired());
  t.SetDeadlineAfterMillis(1e9);
  EXPECT_FALSE(t.Expired());
  EXPECT_GT(t.RemainingMillis(), 0.0);
  t.SetDeadlineAfterMillis(-1.0);  // documented no-op: ms <= 0 disarms none
  EXPECT_FALSE(t.Expired());
  t.SetDeadline(CancelToken::Clock::now());  // already past
  EXPECT_TRUE(t.Expired());
  EXPECT_FALSE(t.Cancelled());  // expiry is not cancellation
  CancelToken c;
  c.Cancel();
  EXPECT_TRUE(c.Cancelled());
  EXPECT_TRUE(c.Expired());
  EXPECT_TRUE(CancelRequested(&c));
  EXPECT_FALSE(CancelRequested(nullptr));
}

// Regression for the frozen-percentile bug: the old implementation kept
// only the first 65536 latency samples per class, so after warmup a latency
// regression never moved min/mean/p95/max. The histogram covers the whole
// stream: a mid-run shift after more than that many samples must show up.
TEST_F(ServiceTest, PercentilesTrackTrafficPastOldSampleBuffer) {
  ServiceStats stats;
  constexpr int kOldBufferSize = 65536;
  for (int i = 0; i < kOldBufferSize + 5000; ++i) {
    stats.RecordReceived();
    stats.RecordCompleted("why/auto", 1.0, false, true);
  }
  EXPECT_NEAR(stats.Snapshot().latency.at("why/auto").p95_ms, 1.0, 0.2);
  // Deliberate mid-run latency shift, entirely past the old buffer.
  for (int i = 0; i < 3 * kOldBufferSize; ++i) {
    stats.RecordReceived();
    stats.RecordCompleted("why/auto", 50.0, false, true);
  }
  const LatencySummary l = stats.Snapshot().latency.at("why/auto");
  EXPECT_GT(l.p95_ms, 40.0);  // old code: frozen at ~1.0
  EXPECT_DOUBLE_EQ(l.max_ms, 50.0);
  EXPECT_DOUBLE_EQ(l.min_ms, 1.0);
  EXPECT_EQ(l.count, static_cast<uint64_t>(4 * kOldBufferSize + 5000));
}

TEST_F(ServiceTest, DegenerateConfigIsClamped) {
  // queue_capacity 0 used to make every Submit reject with no diagnostic;
  // workers 0 would leave accepted futures unresolved forever.
  WhyqService service(graph_, ServiceConfig{0, 0, 4, 0});
  EXPECT_EQ(service.config().workers, 1u);
  EXPECT_EQ(service.config().queue_capacity, 1u);
  std::optional<std::future<ServiceResponse>> f =
      service.Submit(Why({a5_, s5_}));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->get().status, ResponseStatus::kOk);
}

TEST_F(ServiceTest, ShutdownSubmitsAreCounted) {
  WhyqService service(graph_, ServiceConfig{1, 4, 4, 0});
  ServiceResponse ok = service.Execute(Why({a5_, s5_}));
  EXPECT_EQ(ok.status, ResponseStatus::kOk);
  service.Stop();
  std::optional<std::future<ServiceResponse>> f = service.Submit(Why({a5_}));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->get().status, ResponseStatus::kShutdown);
  StatsSnapshot s = service.Stats();
  EXPECT_EQ(s.shutdown, 1u);
  // A shutdown-resolved submit is not "received": totals reconcile.
  EXPECT_EQ(s.received, 1u);
  EXPECT_EQ(s.received, s.completed + s.bad_requests);
  EXPECT_EQ(s.completed, s.cache_hits + s.cache_misses);
}

// Exception containment must be identical on the inline and pooled paths:
// both report kBadRequest and count it, neither lets the exception escape
// (a worker-thread escape would std::terminate the process).
TEST_F(ServiceTest, ExecuteContainsFailuresLikeWorkers) {
  WhyqService service(graph_, ServiceConfig{1, 4, 4, 0});
  ServiceRequest bad = Why({a5_});
  bad.query_text = "node a\nedge oops";
  ServiceResponse inline_r = service.Execute(bad);
  std::optional<std::future<ServiceResponse>> f = service.Submit(bad);
  ASSERT_TRUE(f.has_value());
  ServiceResponse pooled_r = f->get();
  EXPECT_EQ(inline_r.status, ResponseStatus::kBadRequest);
  EXPECT_EQ(pooled_r.status, ResponseStatus::kBadRequest);
  EXPECT_EQ(inline_r.error, pooled_r.error);
  StatsSnapshot s = service.Stats();
  EXPECT_EQ(s.bad_requests, 2u);
  EXPECT_EQ(s.received, 2u);
  EXPECT_EQ(s.received, s.completed + s.bad_requests);
}

TEST_F(ServiceTest, TraceDecomposesLatency) {
  WhyqService service(graph_, ServiceConfig{1, 4, 4, 0});
  ServiceRequest req = Why({a5_, s5_});
  ServiceResponse cold = service.Execute(req);
  ASSERT_EQ(cold.status, ResponseStatus::kOk);
  // Stage sum accounts for (nearly) all of the wall clock; timer residue
  // stays within 5% or a small absolute epsilon for tiny latencies.
  double slack = std::max(0.05 * cold.latency_ms, 0.2);
  EXPECT_LE(cold.trace.StagesTotalMs(), cold.latency_ms + slack);
  EXPECT_GE(cold.trace.StagesTotalMs(), cold.latency_ms - slack);
  EXPECT_GT(cold.trace.matcher_candidates, 0u);
  // The prepare sub-stages only run on a miss.
  ServiceResponse warm = service.Execute(req);
  ASSERT_TRUE(warm.cache_hit);
  EXPECT_DOUBLE_EQ(warm.trace.candidates_ms, 0.0);
  EXPECT_DOUBLE_EQ(warm.trace.answer_match_ms, 0.0);
  EXPECT_DOUBLE_EQ(warm.trace.path_index_ms, 0.0);
  EXPECT_EQ(warm.trace.matcher_candidates, cold.trace.matcher_candidates);
  // Greedy why reports its selection rounds.
  EXPECT_GT(warm.trace.greedy_rounds, 0u);
  // The stats roll the traces up.
  StatsSnapshot s = service.Stats();
  EXPECT_GT(s.stages.search_ms, 0.0);
  EXPECT_GT(s.stages.latency_ms, 0.0);
  EXPECT_EQ(s.work.matcher_candidates,
            cold.trace.matcher_candidates + warm.trace.matcher_candidates);
}

TEST_F(ServiceTest, SlowQueryLogRetainsNewestWithTraces) {
  ServiceStats stats;
  stats.ConfigureSlowLog(10.0, 2);
  RequestTrace t;
  t.search_ms = 11.0;
  stats.RecordCompleted("why/auto", 5.0, false, false, t);   // fast: dropped
  stats.RecordCompleted("why/auto", 11.0, false, false, t);  // slow #2
  stats.RecordCompleted("why/auto", 12.0, false, true, t);   // slow #3
  stats.RecordCompleted("why/auto", 13.0, true, false, t);   // slow #4
  StatsSnapshot s = stats.Snapshot();
  EXPECT_DOUBLE_EQ(s.slow_threshold_ms, 10.0);
  ASSERT_EQ(s.slow.size(), 2u);  // bounded: newest two retained
  EXPECT_DOUBLE_EQ(s.slow[0].latency_ms, 12.0);
  EXPECT_DOUBLE_EQ(s.slow[1].latency_ms, 13.0);
  EXPECT_EQ(s.slow[0].seq, 3u);
  EXPECT_TRUE(s.slow[1].truncated);
  EXPECT_DOUBLE_EQ(s.slow[1].trace.search_ms, 11.0);
  EXPECT_NE(s.ToString().find("slow queries"), std::string::npos);
  EXPECT_NE(s.ToJson().find("\"slow_queries\""), std::string::npos);
}

TEST_F(ServiceTest, PreparedCacheCapacityZeroIsInert) {
  PreparedQueryCache cache(0);
  bool complete = true;
  std::optional<Query> q = ParseQuery(query_text_, *graph_, nullptr);
  ASSERT_TRUE(q.has_value());
  cache.Put("k", PrepareQuery(*graph_, std::move(*q),
                              MatchSemantics::kIsomorphism, 4, nullptr,
                              &complete));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get("k"), nullptr);
}

TEST_F(ServiceTest, PreparedCachePutRefreshesRecency) {
  PreparedQueryCache cache(2);
  auto put = [&](const std::string& key) {
    bool complete = true;
    std::optional<Query> q = ParseQuery(query_text_, *graph_, nullptr);
    ASSERT_TRUE(q.has_value());
    cache.Put(key, PrepareQuery(*graph_, std::move(*q),
                                MatchSemantics::kIsomorphism, 4, nullptr,
                                &complete));
  };
  put("a");
  put("b");
  put("a");  // refresh via Put, not Get: "b" becomes LRU
  put("c");
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

// Eviction racing lookups on a capacity-1 cache; run under TSan with the
// rest of the service tests. Entries returned by Get must stay valid after
// eviction (shared_ptr keeps them alive).
TEST_F(ServiceTest, PreparedCacheConcurrentGetPut) {
  PreparedQueryCache cache(1);
  std::optional<Query> base = ParseQuery(query_text_, *graph_, nullptr);
  ASSERT_TRUE(base.has_value());
  bool complete = true;
  std::shared_ptr<const PreparedQuery> value =
      PrepareQuery(*graph_, std::move(*base), MatchSemantics::kIsomorphism,
                   4, nullptr, &complete);
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        std::string key = "k" + std::to_string((t + i) % 3);
        if (i % 2 == 0) {
          cache.Put(key, value);
        } else {
          std::shared_ptr<const PreparedQuery> got = cache.Get(key);
          if (got != nullptr) {
            EXPECT_EQ(got->answers.size(), value->answers.size());
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.size(), 1u);
}

TEST_F(ServiceTest, StatsSnapshotRendersLatencies) {
  ServiceStats stats;
  stats.RecordReceived();
  stats.RecordCompleted("why/auto", 1.5, false, true);
  stats.RecordReceived();
  stats.RecordCompleted("why/auto", 2.5, true, false);
  StatsSnapshot s = stats.Snapshot();
  EXPECT_EQ(s.received, 2u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.truncated, 1u);
  EXPECT_EQ(s.cache_hits, 1u);
  ASSERT_EQ(s.latency.count("why/auto"), 1u);
  const LatencySummary& l = s.latency.at("why/auto");
  EXPECT_EQ(l.count, 2u);
  EXPECT_DOUBLE_EQ(l.min_ms, 1.5);
  EXPECT_DOUBLE_EQ(l.max_ms, 2.5);
  EXPECT_DOUBLE_EQ(l.mean_ms, 2.0);
  EXPECT_FALSE(s.ToString().empty());
}

}  // namespace
}  // namespace whyq
