// End-to-end integration: the exploratory-search loop of the paper's
// Fig. 2 — query, inspect, ask a Why-question, adopt the suggested
// rewrite, re-query, ask a follow-up — exercised across the whole stack
// (graph, matcher, question generation, algorithms, rewrite application).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/figure1.h"
#include "gen/profiles.h"
#include "harness/experiment.h"
#include "matcher/matcher.h"
#include "why/extensions.h"
#include "why/why_algorithms.h"
#include "why/whynot_algorithms.h"

namespace whyq {
namespace {

TEST(SessionTest, Figure1FullNarrative) {
  // The complete Example 1-8 walk-through.
  Figure1 f = MakeFigure1();
  Matcher m(f.graph);

  // Initial answer: {A5, S5, S6}.
  std::vector<NodeId> answers = m.MatchOutput(f.query);
  std::set<NodeId> initial(answers.begin(), answers.end());
  EXPECT_EQ(initial, (std::set<NodeId>{f.a5, f.s5, f.s6}));

  // Turn 1 — Why {A5, S5}: the rewrite Q1 keeps the S6 only.
  AnswerConfig cfg;
  cfg.budget = 4.0;
  cfg.guard_m = 0;
  WhyQuestion why{{f.a5, f.s5}};
  RewriteAnswer q1 = ExactWhy(f.graph, f.query, answers, why, cfg);
  ASSERT_TRUE(q1.found);
  EXPECT_DOUBLE_EQ(q1.eval.closeness, 1.0);
  std::vector<NodeId> a1 = m.MatchOutput(q1.rewritten);
  EXPECT_EQ(std::set<NodeId>(a1.begin(), a1.end()),
            std::set<NodeId>{f.s6});

  // Turn 2 — Why-not {S8, S9} with OS >= 5 on the ORIGINAL query: the
  // rewrite Q2 admits both while keeping the original answers (Lemma 1).
  WhyNotQuestion whynot;
  whynot.missing = {f.s8, f.s9};
  ConstraintLiteral os5;
  os5.attr = *f.graph.attr_names().Find("OS");
  os5.op = CompareOp::kGe;
  os5.constant = Value(5.0);
  whynot.condition.literals.push_back(os5);
  AnswerConfig relax = cfg;
  relax.budget = 5.0;
  relax.guard_m = 2;
  RewriteAnswer q2 = ExactWhyNot(f.graph, f.query, answers, whynot, relax);
  ASSERT_TRUE(q2.found);
  EXPECT_DOUBLE_EQ(q2.eval.closeness, 1.0);
  std::vector<NodeId> a2 = m.MatchOutput(q2.rewritten);
  std::set<NodeId> final(a2.begin(), a2.end());
  EXPECT_TRUE(final.count(f.s8));
  EXPECT_TRUE(final.count(f.s9));
  for (NodeId v : answers) EXPECT_TRUE(final.count(v));

  // Turn 3 — Why-so-many on the relaxed query: shrink back to <= 2.
  WhySoManyResult shrink =
      AnswerWhySoMany(f.graph, q2.rewritten, a2, 2, relax);
  EXPECT_LE(shrink.after, shrink.before);
}

TEST(SessionTest, IterativeSessionOnProfileGraph) {
  // A generated multi-turn session: each turn adopts the rewrite and poses
  // the next question against it — closeness and answers must stay
  // consistent at every step.
  Graph g = GenerateProfile(DatasetProfile::kIMDb, 3000, 41);
  WorkloadConfig wc;
  wc.items = 1;
  wc.query.edges = 3;
  wc.query.min_answers = 5;
  wc.seed = 9;
  Workload w = MakeWorkload(g, wc);
  if (w.items.empty()) GTEST_SKIP();
  Matcher m(g);
  AnswerConfig cfg;
  cfg.budget = 4.0;
  cfg.guard_m = 2;

  Query current = w.items[0].gq.query;
  std::vector<NodeId> answers = w.items[0].gq.answers;
  Rng rng(5);
  for (int turn = 0; turn < 3 && answers.size() > 1; ++turn) {
    WhyQuestion why{{answers[rng.Index(answers.size())]}};
    RewriteAnswer a = ApproxWhy(g, current, answers, why, cfg);
    // The reported exact closeness must agree with re-evaluating the
    // rewrite from scratch.
    std::vector<NodeId> after = m.MatchOutput(a.rewritten);
    std::set<NodeId> after_set(after.begin(), after.end());
    size_t excluded = 0;
    for (NodeId v : why.unexpected) excluded += after_set.count(v) ? 0 : 1;
    double recomputed = static_cast<double>(excluded) /
                        static_cast<double>(why.unexpected.size());
    EXPECT_DOUBLE_EQ(a.eval.closeness, recomputed);
    // Refinement: answers never grow (Lemma 1).
    std::set<NodeId> before_set(answers.begin(), answers.end());
    for (NodeId v : after) EXPECT_TRUE(before_set.count(v));
    if (!a.found) break;
    current = a.rewritten;
    answers = std::move(after);
  }
}

TEST(SessionTest, WhyEmptyThenQueryWorks) {
  Figure1 f = MakeFigure1();
  Query q = f.query;
  SymbolId price = *f.graph.attr_names().Find("Price");
  // Over-constrain, repair, and verify the repaired query's answers
  // satisfy every literal it still carries.
  q.AddLiteral(q.output(), Literal{price, CompareOp::kGt,
                                   Value(int64_t{10000})});
  AnswerConfig cfg;
  cfg.budget = 6.0;
  WhyEmptyResult r = AnswerWhyEmpty(f.graph, q, cfg);
  ASSERT_TRUE(r.found);
  Matcher m(f.graph);
  std::vector<NodeId> repaired = m.MatchOutput(r.rewritten);
  EXPECT_FALSE(repaired.empty());
  for (NodeId v : repaired) {
    for (const Literal& l : r.rewritten.node(r.rewritten.output()).literals) {
      const Value* val = f.graph.GetAttr(v, l.attr);
      ASSERT_NE(val, nullptr);
      EXPECT_TRUE(val->Satisfies(l.op, l.constant));
    }
  }
}

}  // namespace
}  // namespace whyq
