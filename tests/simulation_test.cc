#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/figure1.h"
#include "gen/profiles.h"
#include "gen/query_gen.h"
#include "matcher/match_engine.h"
#include "matcher/matcher.h"
#include "matcher/simulation.h"
#include "why/why_algorithms.h"
#include "why/whynot_algorithms.h"

namespace whyq {
namespace {

TEST(SimulationTest, Figure1AgreesWithIsomorphism) {
  // On the star-shaped Fig. 1 query (no injectivity pressure, no cycles)
  // dual simulation and isomorphism coincide.
  Figure1 f = MakeFigure1();
  Matcher m(f.graph);
  std::vector<NodeId> iso = m.MatchOutput(f.query);
  std::vector<NodeId> sim = SimulationAnswers(f.graph, f.query);
  std::sort(iso.begin(), iso.end());
  EXPECT_EQ(iso, sim);
}

TEST(SimulationTest, SimulationIsSupersetOfIsomorphism) {
  Graph g = GenerateProfile(DatasetProfile::kIMDb, 2000, 5);
  Rng rng(3);
  QueryGenConfig cfg;
  cfg.edges = 3;
  cfg.literals_per_node = 1;
  size_t checked = 0;
  for (int i = 0; i < 6; ++i) {
    std::optional<GeneratedQuery> gq = GenerateQuery(g, cfg, rng);
    if (!gq.has_value()) continue;
    std::vector<NodeId> sim = SimulationAnswers(g, gq->query);
    for (NodeId v : gq->answers) {
      EXPECT_TRUE(std::binary_search(sim.begin(), sim.end(), v));
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(SimulationTest, DropsInjectivity) {
  // One B node serving two query children: iso fails, simulation matches.
  GraphBuilder gb;
  NodeId a = gb.AddNode("A");
  NodeId b = gb.AddNode("B");
  gb.AddEdge(a, b, "r");
  Graph g = gb.Build();
  SymbolId la = *g.node_labels().Find("A");
  SymbolId lb = *g.node_labels().Find("B");
  SymbolId r = *g.edge_labels().Find("r");
  Query q;
  QNodeId ua = q.AddNode(la);
  QNodeId u1 = q.AddNode(lb);
  QNodeId u2 = q.AddNode(lb);
  q.AddEdge(ua, u1, r);
  q.AddEdge(ua, u2, r);
  q.SetOutput(ua);
  Matcher m(g);
  EXPECT_TRUE(m.MatchOutput(q).empty());
  std::vector<NodeId> sim = SimulationAnswers(g, q);
  ASSERT_EQ(sim.size(), 1u);
  EXPECT_EQ(sim[0], a);
}

TEST(SimulationTest, DualConditionPrunesDanglingChain) {
  // Cyclic query vs. a plain chain: the chain's endpoints lack the
  // required successor/predecessor, and pruning cascades to emptiness.
  GraphBuilder gb;
  NodeId x0 = gb.AddNode("X");
  NodeId x1 = gb.AddNode("X");
  NodeId x2 = gb.AddNode("X");
  gb.AddEdge(x0, x1, "r");
  gb.AddEdge(x1, x2, "r");
  Graph chain = gb.Build();
  SymbolId x = *chain.node_labels().Find("X");
  SymbolId r = *chain.edge_labels().Find("r");
  Query cyc;
  QNodeId u0 = cyc.AddNode(x);
  QNodeId u1 = cyc.AddNode(x);
  cyc.AddEdge(u0, u1, r);
  cyc.AddEdge(u1, u0, r);
  cyc.SetOutput(u0);
  EXPECT_TRUE(SimulationAnswers(chain, cyc).empty());

  // On an actual 2-cycle both nodes simulate.
  GraphBuilder gb2;
  NodeId y0 = gb2.AddNode("X");
  NodeId y1 = gb2.AddNode("X");
  gb2.AddEdge(y0, y1, "r");
  gb2.AddEdge(y1, y0, "r");
  Graph cycle = gb2.Build();
  EXPECT_EQ(SimulationAnswers(cycle, cyc).size(), 2u);
}

TEST(SimulationTest, CycleMatchesUnrolling) {
  // The hallmark of simulation: a directed 3-cycle query matches a 2-cycle
  // graph (its unrolling), which isomorphism cannot.
  GraphBuilder gb;
  NodeId y0 = gb.AddNode("X");
  NodeId y1 = gb.AddNode("X");
  gb.AddEdge(y0, y1, "r");
  gb.AddEdge(y1, y0, "r");
  Graph cycle2 = gb.Build();
  SymbolId x = *cycle2.node_labels().Find("X");
  SymbolId r = *cycle2.edge_labels().Find("r");
  Query cyc3;
  QNodeId u0 = cyc3.AddNode(x);
  QNodeId u1 = cyc3.AddNode(x);
  QNodeId u2 = cyc3.AddNode(x);
  cyc3.AddEdge(u0, u1, r);
  cyc3.AddEdge(u1, u2, r);
  cyc3.AddEdge(u2, u0, r);
  cyc3.SetOutput(u0);
  Matcher m(cycle2);
  EXPECT_TRUE(m.MatchOutput(cyc3).empty());  // needs 3 distinct nodes
  EXPECT_EQ(SimulationAnswers(cycle2, cyc3).size(), 2u);
}

TEST(SimulationTest, LiteralsRespected) {
  Figure1 f = MakeFigure1();
  std::vector<std::vector<NodeId>> sim = DualSimulation(f.graph, f.query);
  // Phones over the price bound never simulate the output node.
  const std::vector<NodeId>& out = sim[f.query.output()];
  EXPECT_FALSE(std::binary_search(out.begin(), out.end(), f.s8));
  EXPECT_FALSE(std::binary_search(out.begin(), out.end(), f.s9));
}

TEST(MatchEngineTest, FactoryAndNames) {
  Figure1 f = MakeFigure1();
  for (MatchSemantics s :
       {MatchSemantics::kIsomorphism, MatchSemantics::kSimulation}) {
    std::unique_ptr<MatchEngine> e = MakeMatchEngine(f.graph, s);
    ASSERT_NE(e, nullptr);
    std::vector<NodeId> ans = e->MatchOutput(f.query);
    EXPECT_EQ(ans.size(), 3u);
    EXPECT_TRUE(e->IsAnswer(f.query, f.s6));
    EXPECT_FALSE(e->IsAnswer(f.query, f.s9));
    EXPECT_TRUE(e->HasAnyMatch(f.query));
    NodeSet none(std::vector<NodeId>{}, f.graph.node_count());
    EXPECT_EQ(e->CountAnswersNotIn(f.query, none, 10), 3u);
    EXPECT_EQ(e->CountAnswersNotIn(f.query, none, 1), 2u);  // early stop
    EXPECT_NE(std::string(MatchSemanticsName(s)), "?");
  }
}

TEST(MatchEngineTest, WhyUnderSimulationSemantics) {
  // The full Why pipeline under simulation semantics on Fig. 1: same
  // optimal rewrite story as under isomorphism.
  Figure1 f = MakeFigure1();
  std::unique_ptr<MatchEngine> e =
      MakeMatchEngine(f.graph, MatchSemantics::kSimulation);
  std::vector<NodeId> answers = e->MatchOutput(f.query);
  AnswerConfig cfg;
  cfg.budget = 4.0;
  cfg.guard_m = 0;
  cfg.semantics = MatchSemantics::kSimulation;
  WhyQuestion why{{f.a5, f.s5}};
  RewriteAnswer a = ExactWhy(f.graph, f.query, answers, why, cfg);
  ASSERT_TRUE(a.found);
  EXPECT_DOUBLE_EQ(a.eval.closeness, 1.0);
  EXPECT_TRUE(a.eval.guard_ok);
  EXPECT_FALSE(e->IsAnswer(a.rewritten, f.a5));
  EXPECT_FALSE(e->IsAnswer(a.rewritten, f.s5));
  EXPECT_TRUE(e->IsAnswer(a.rewritten, f.s6));
}

TEST(MatchEngineTest, WhyNotUnderSimulationSemantics) {
  Figure1 f = MakeFigure1();
  std::unique_ptr<MatchEngine> e =
      MakeMatchEngine(f.graph, MatchSemantics::kSimulation);
  std::vector<NodeId> answers = e->MatchOutput(f.query);
  AnswerConfig cfg;
  cfg.budget = 5.0;
  cfg.guard_m = 2;
  cfg.semantics = MatchSemantics::kSimulation;
  WhyNotQuestion w;
  w.missing = {f.s8, f.s9};
  RewriteAnswer a = ExactWhyNot(f.graph, f.query, answers, w, cfg);
  ASSERT_TRUE(a.found);
  EXPECT_DOUBLE_EQ(a.eval.closeness, 1.0);
  EXPECT_TRUE(e->IsAnswer(a.rewritten, f.s8));
  EXPECT_TRUE(e->IsAnswer(a.rewritten, f.s9));
}

}  // namespace
}  // namespace whyq
