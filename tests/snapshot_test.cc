// Frozen snapshot coverage in three layers:
//   1. deep round-trip equality: Write → Load reproduces every public
//      observation of the graph (labels, attribute tuples, adjacency in
//      order, label slices, buckets, attribute ranges, dictionaries) on
//      the Fig. 1 fixture, BSBM, a random profile graph, and the empty
//      graph;
//   2. counter-pinned equivalence: matcher answers AND work counters are
//      bit-identical between the heap-built graph and the mmap-backed
//      one, with and without a MatchContext, under both semantics;
//   3. rejection: truncated, corrupted, wrong-version, wrong-magic, and
//      fingerprint-tampered images all fail Load with an error instead
//      of serving garbage (the checksum covers the header prefix and
//      section table, not just payload bytes).

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/bsbm.h"
#include "gen/figure1.h"
#include "gen/profiles.h"
#include "gen/query_gen.h"
#include "graph/snapshot.h"
#include "matcher/match_context.h"
#include "matcher/match_engine.h"
#include "matcher/matcher.h"

namespace whyq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "whyq_" + name;
}

std::string WriteSnapshotOrDie(const Graph& g, const std::string& name) {
  std::string path = TempPath(name);
  std::string err;
  EXPECT_TRUE(GraphSnapshot::Write(g, path, &err)) << err;
  return path;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<long>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void ExpectSameDict(const Dictionary& a, const Dictionary& b) {
  ASSERT_EQ(a.size(), b.size());
  for (SymbolId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.NameOf(i), b.NameOf(i)) << "symbol " << i;
  }
}

std::vector<NodeId> ToVec(NodeSpan s) {
  return std::vector<NodeId>(s.begin(), s.end());
}

// Every public observation of `b` must match `a` — the loaded graph is
// indistinguishable from the built one.
void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  ExpectSameDict(a.node_labels(), b.node_labels());
  ExpectSameDict(a.edge_labels(), b.edge_labels());
  ExpectSameDict(a.attr_names(), b.attr_names());
  for (NodeId v = 0; v < a.node_count(); ++v) {
    EXPECT_EQ(a.label(v), b.label(v)) << "node " << v;
    AttrSpan at = a.attrs(v);
    AttrSpan bt = b.attrs(v);
    ASSERT_EQ(at.size(), bt.size()) << "node " << v;
    for (size_t i = 0; i < at.size(); ++i) {
      EXPECT_EQ(at[i].attr, bt[i].attr);
      EXPECT_EQ(at[i].value.ToString(), bt[i].value.ToString());
    }
    for (bool forward : {true, false}) {
      EdgeSpan ae = forward ? a.out_edges(v) : a.in_edges(v);
      EdgeSpan be = forward ? b.out_edges(v) : b.in_edges(v);
      ASSERT_EQ(ae.size(), be.size()) << "node " << v;
      for (size_t i = 0; i < ae.size(); ++i) {
        EXPECT_EQ(ae[i].other, be[i].other);
        EXPECT_EQ(ae[i].label, be[i].label);
      }
    }
    // Label-partitioned adjacency agrees slice by slice.
    for (SymbolId l = 0; l < a.edge_labels().size(); ++l) {
      EXPECT_EQ(ToVec(a.LabeledOutNeighbors(v, l)),
                ToVec(b.LabeledOutNeighbors(v, l)));
      EXPECT_EQ(ToVec(a.LabeledInNeighbors(v, l)),
                ToVec(b.LabeledInNeighbors(v, l)));
    }
  }
  for (SymbolId l = 0; l < a.node_labels().size(); ++l) {
    EXPECT_EQ(ToVec(a.NodesWithLabel(l)), ToVec(b.NodesWithLabel(l)))
        << "label " << l;
  }
  for (SymbolId attr = 0; attr < a.attr_names().size(); ++attr) {
    const AttrRange* ar = a.RangeOf(attr);
    const AttrRange* br = b.RangeOf(attr);
    ASSERT_EQ(ar == nullptr, br == nullptr) << "attr " << attr;
    if (ar == nullptr) continue;
    EXPECT_EQ(ar->min, br->min);
    EXPECT_EQ(ar->max, br->max);
    EXPECT_EQ(ar->numeric, br->numeric);
    EXPECT_EQ(ar->count, br->count);
  }
  EXPECT_EQ(GraphFingerprint(a), GraphFingerprint(b));
}

TEST(SnapshotRoundTripTest, Figure1IsReproducedExactly) {
  Figure1 f = MakeFigure1();
  std::string path = WriteSnapshotOrDie(f.graph, "fig1.snap");
  std::string err;
  std::unique_ptr<GraphSnapshot> snap = GraphSnapshot::Load(path, &err);
  ASSERT_NE(snap, nullptr) << err;
  EXPECT_GT(snap->mapped_bytes(), sizeof(SnapHeader));
  EXPECT_EQ(snap->fingerprint(), GraphFingerprint(f.graph));
  ExpectSameGraph(f.graph, snap->graph());
}

TEST(SnapshotRoundTripTest, BsbmAndProfileGraphsSurvive) {
  BsbmConfig bc;
  bc.products = 120;
  bc.seed = 17;
  Graph bsbm = GenerateBsbm(bc);
  Graph prof = GenerateProfile(DatasetProfile::kDBpedia, 800, 29);
  int idx = 0;
  for (const Graph* g : {&bsbm, &prof}) {
    std::string path =
        WriteSnapshotOrDie(*g, "rt" + std::to_string(idx++) + ".snap");
    std::string err;
    std::unique_ptr<GraphSnapshot> snap = GraphSnapshot::Load(path, &err);
    ASSERT_NE(snap, nullptr) << err;
    ExpectSameGraph(*g, snap->graph());
  }
}

TEST(SnapshotRoundTripTest, EmptyGraphSurvives) {
  Graph empty;
  std::string path = WriteSnapshotOrDie(empty, "empty.snap");
  std::string err;
  std::unique_ptr<GraphSnapshot> snap = GraphSnapshot::Load(path, &err);
  ASSERT_NE(snap, nullptr) << err;
  EXPECT_EQ(snap->graph().node_count(), 0u);
  EXPECT_EQ(snap->graph().edge_count(), 0u);
}

TEST(SnapshotRoundTripTest, WriteIsDeterministic) {
  Figure1 f = MakeFigure1();
  std::string a = WriteSnapshotOrDie(f.graph, "det_a.snap");
  std::string b = WriteSnapshotOrDie(f.graph, "det_b.snap");
  EXPECT_EQ(ReadAll(a), ReadAll(b));
}

// --- Counter-pinned equivalence. ----------------------------------------

struct MatchRun {
  std::vector<NodeId> answers;
  std::vector<uint8_t> tested;
  MatcherStats stats;
};

MatchRun RunIso(const Graph& g, const Query& q, const std::vector<NodeId>& probes,
           bool with_context) {
  Matcher m(g);
  MatchContext ctx(g);
  if (with_context) m.set_context(&ctx);
  MatchRun r;
  r.answers = m.MatchOutput(q);
  r.tested = m.TestAnswers(q, probes);
  r.stats = m.stats();
  return r;
}

void ExpectSameCounters(const MatcherStats& a, const MatcherStats& b) {
  EXPECT_EQ(a.embeddings_tried, b.embeddings_tried);
  EXPECT_EQ(a.iso_tests, b.iso_tests);
  EXPECT_EQ(a.ctx_hits, b.ctx_hits);
  EXPECT_EQ(a.ctx_misses, b.ctx_misses);
  EXPECT_EQ(a.ctx_delta_builds, b.ctx_delta_builds);
  EXPECT_EQ(a.ctx_pruned, b.ctx_pruned);
  EXPECT_EQ(a.ctx_arena_bytes, b.ctx_arena_bytes);
}

TEST(SnapshotEquivalenceTest, MatcherCountersArePinnedBothSemantics) {
  BsbmConfig bc;
  bc.products = 200;
  bc.seed = 23;
  Graph built = GenerateBsbm(bc);
  std::string path = WriteSnapshotOrDie(built, "equiv.snap");
  std::string err;
  std::unique_ptr<GraphSnapshot> snap = GraphSnapshot::Load(path, &err);
  ASSERT_NE(snap, nullptr) << err;
  const Graph& mapped = snap->graph();

  Rng rng(5);
  QueryGenConfig qc;
  qc.edges = 3;
  qc.literals_per_node = 2;
  qc.min_answers = 1;
  std::optional<GeneratedQuery> gen = GenerateQuery(built, qc, rng);
  ASSERT_TRUE(gen.has_value());
  const Query& q = gen->query;
  std::vector<NodeId> probes = gen->answers;
  for (int i = 0; i < 16; ++i) {
    probes.push_back(static_cast<NodeId>(rng.Index(built.node_count())));
  }

  // Matcher counters pinned exactly, memoized and not.
  for (bool with_context : {false, true}) {
    MatchRun heap = RunIso(built, q, probes, with_context);
    MatchRun mmapd = RunIso(mapped, q, probes, with_context);
    EXPECT_EQ(heap.answers, mmapd.answers) << "context " << with_context;
    EXPECT_EQ(heap.tested, mmapd.tested);
    ExpectSameCounters(heap.stats, mmapd.stats);
  }

  // Engine-level answers pinned under both semantics.
  for (MatchSemantics sem :
       {MatchSemantics::kIsomorphism, MatchSemantics::kSimulation}) {
    std::unique_ptr<MatchEngine> on_heap = MakeMatchEngine(built, sem);
    std::unique_ptr<MatchEngine> on_map = MakeMatchEngine(mapped, sem);
    EXPECT_EQ(on_heap->MatchOutput(q), on_map->MatchOutput(q));
    EXPECT_EQ(on_heap->TestAnswers(q, probes), on_map->TestAnswers(q, probes));
  }
}

// --- Rejection of damaged images. ---------------------------------------

class SnapshotRejectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Figure1 f = MakeFigure1();
    path_ = WriteSnapshotOrDie(f.graph, "reject.snap");
    image_ = ReadAll(path_);
    ASSERT_GT(image_.size(), sizeof(SnapHeader));
  }

  // Writes a mutated copy and expects Load to reject it with an error
  // message containing `expect_msg`.
  void ExpectRejected(const std::string& bytes, const std::string& name,
                      const std::string& expect_msg) {
    std::string mutated = TempPath(name);
    WriteAll(mutated, bytes);
    std::string err;
    std::unique_ptr<GraphSnapshot> snap = GraphSnapshot::Load(mutated, &err);
    EXPECT_EQ(snap, nullptr) << name;
    EXPECT_NE(err.find(expect_msg), std::string::npos)
        << name << ": got error '" << err << "'";
  }

  std::string path_;
  std::string image_;
};

TEST_F(SnapshotRejectTest, GoodImageLoads) {
  std::string err;
  EXPECT_NE(GraphSnapshot::Load(path_, &err), nullptr) << err;
}

TEST_F(SnapshotRejectTest, MissingFile) {
  std::string err;
  EXPECT_EQ(GraphSnapshot::Load(TempPath("nonexistent.snap"), &err), nullptr);
  EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
}

TEST_F(SnapshotRejectTest, TruncatedImage) {
  ExpectRejected(image_.substr(0, image_.size() / 2), "trunc.snap",
                 "truncated");
  ExpectRejected(image_.substr(0, sizeof(SnapHeader) / 2), "stub.snap",
                 "too small");
}

TEST_F(SnapshotRejectTest, CorruptPayloadByte) {
  // Flip the first byte of the first section's payload (trailing padding
  // is NOT covered by the checksum, so the mutation must land inside a
  // section, not merely inside the file).
  GraphSnapshot::Info info;
  std::string err;
  ASSERT_TRUE(GraphSnapshot::ReadInfo(path_, &info, &err)) << err;
  ASSERT_GT(info.sections[0].bytes, 0u);
  std::string bytes = image_;
  bytes[info.sections[0].offset] ^= 0x01;
  ExpectRejected(bytes, "corrupt.snap", "checksum");
}

TEST_F(SnapshotRejectTest, WrongMagic) {
  std::string bytes = image_;
  bytes[0] = 'x';
  ExpectRejected(bytes, "magic.snap", "bad magic");
}

TEST_F(SnapshotRejectTest, WrongVersion) {
  std::string bytes = image_;
  bytes[offsetof(SnapHeader, version)] =
      static_cast<char>(kSnapshotVersion + 1);
  ExpectRejected(bytes, "version.snap", "unsupported version");
}

TEST_F(SnapshotRejectTest, TamperedFingerprint) {
  // The checksum covers the header prefix, so flipping the stored
  // fingerprint is caught even though every payload byte is intact.
  std::string bytes = image_;
  bytes[offsetof(SnapHeader, fingerprint)] ^= 0x01;
  ExpectRejected(bytes, "fp.snap", "checksum");
}

TEST_F(SnapshotRejectTest, TamperedSectionTable) {
  std::string bytes = image_;
  // First section's offset field (id @+0, reserved @+4, offset @+8).
  size_t table_at = sizeof(SnapHeader);
  bytes[table_at + offsetof(SnapSection, offset)] ^= 0x01;
  ExpectRejected(bytes, "table.snap", "");
}

TEST_F(SnapshotRejectTest, ReadInfoReportsLayout) {
  GraphSnapshot::Info info;
  std::string err;
  ASSERT_TRUE(GraphSnapshot::ReadInfo(path_, &info, &err)) << err;
  EXPECT_EQ(info.version, kSnapshotVersion);
  EXPECT_EQ(info.file_bytes, image_.size());
  ASSERT_EQ(info.sections.size(), size_t{kSnapshotSectionCount});
  uint64_t prev_end = 0;
  for (uint32_t i = 0; i < kSnapshotSectionCount; ++i) {
    const SnapSection& s = info.sections[i];
    EXPECT_EQ(s.id, i);
    EXPECT_EQ(s.offset % kSnapshotSectionAlign, 0u);
    EXPECT_GE(s.offset, prev_end);
    EXPECT_LE(s.offset + s.bytes, info.file_bytes);
    prev_end = s.offset + s.bytes;
  }
  Figure1 f = MakeFigure1();
  EXPECT_EQ(info.node_count, f.graph.node_count());
  EXPECT_EQ(info.edge_count, f.graph.edge_count());
  EXPECT_EQ(info.fingerprint, GraphFingerprint(f.graph));
}

}  // namespace
}  // namespace whyq
