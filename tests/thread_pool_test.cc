// ThreadPool contract tests: index coverage, slot density, serial
// degradation, exception propagation, nested calls, and concurrent use.
// The suite name matches the CI thread-sanitizer filter (see
// .github/workflows/ci.yml) so the whole file runs under TSan.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace whyq {
namespace {

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, 4, [&](size_t i, size_t) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, WidthOneIsSerialAscending) {
  ThreadPool pool(3);
  std::vector<size_t> order;
  pool.ParallelFor(50, 1, [&](size_t i, size_t slot) {
    EXPECT_EQ(slot, 0u);
    order.push_back(i);  // no synchronization: must be single-threaded
  });
  ASSERT_EQ(order.size(), 50u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  std::vector<size_t> order;
  pool.ParallelFor(10, 8, [&](size_t i, size_t slot) {
    EXPECT_EQ(slot, 0u);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 10u);
}

TEST(ThreadPoolTest, SlotsAreDenseAndStable) {
  ThreadPool pool(3);
  constexpr size_t kWidth = 4;
  std::mutex mu;
  std::set<size_t> slots;
  pool.ParallelFor(200, kWidth, [&](size_t, size_t slot) {
    EXPECT_LT(slot, kWidth);
    std::lock_guard<std::mutex> lock(mu);
    slots.insert(slot);
  });
  // Slot 0 (the caller) always participates; helpers may or may not claim
  // an index but can never exceed the width.
  EXPECT_TRUE(slots.count(0) > 0);
  EXPECT_LE(slots.size(), kWidth);
}

TEST(ThreadPoolTest, EmptyAndTinyRanges) {
  ThreadPool pool(2);
  size_t calls = 0;
  pool.ParallelFor(0, 4, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  pool.ParallelFor(1, 4, [&](size_t i, size_t slot) {
    ++calls;
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(slot, 0u);  // n - 1 == 0 helpers: inline on the caller
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPoolTest, FirstExceptionPropagatesToCaller) {
  ThreadPool pool(3);
  std::atomic<size_t> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(100, 4,
                       [&](size_t i, size_t) {
                         ++ran;
                         if (i == 7) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // Abort is cooperative: some indices may run after the throw, but the
  // call returned only once all executors were done.
  EXPECT_LE(ran.load(), 100u);
}

TEST(ThreadPoolTest, NestedCallFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<size_t> inner_total{0};
  pool.ParallelFor(8, 3, [&](size_t, size_t) {
    // On a pool worker this degrades to inline-serial; on the caller it may
    // enqueue again. Either way it must terminate.
    pool.ParallelFor(4, 3, [&](size_t, size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 8u * 4u);
}

TEST(ThreadPoolTest, ConcurrentParallelForsFromManyThreads) {
  ThreadPool pool(3);
  constexpr size_t kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<std::atomic<size_t>> sums(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      pool.ParallelFor(64, 3, [&, t](size_t, size_t) { ++sums[t]; });
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t t = 0; t < kThreads; ++t) EXPECT_EQ(sums[t].load(), 64u);
}

TEST(ThreadPoolTest, QueueDrainsAfterCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    pool.ParallelFor(32, 4, [](size_t, size_t) {});
  }
  // ParallelFor is synchronous: nothing of ours may still be *running*.
  // Late-dequeued helper stubs are no-ops and drain promptly; poll briefly
  // rather than assert an instantaneous empty queue.
  for (int i = 0; i < 100 && pool.queued_tasks() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.queued_tasks(), 0u);
}

TEST(ThreadPoolTest, SharedPoolHasWorkersAndResolvesWidth) {
  // The shared pool floors at 3 workers so --threads=4 means something on
  // single-core containers.
  EXPECT_GE(ThreadPool::Shared().worker_count(), 3u);
  EXPECT_EQ(ResolveParallelWidth(0), 1u);
  EXPECT_EQ(ResolveParallelWidth(1), 1u);
  EXPECT_EQ(ResolveParallelWidth(4), 4u);
  EXPECT_LE(ResolveParallelWidth(1000),
            ThreadPool::Shared().worker_count() + 1);
}

}  // namespace
}  // namespace whyq
