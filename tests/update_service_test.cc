// The service side of incremental updates: graph identity/epoch in the
// prepared-query cache key (the stale-hit bugfix), precise
// footprint-vs-delta invalidation, epoch-pinned reads, and the stats
// counters. The concurrency test at the bottom runs readers against
// ApplyUpdate publishes — the suite name matches the CI TSan job's
// filter, so data races there fail the sanitizer build.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph.h"
#include "graph/update.h"
#include "query/query_parser.h"
#include "service/prepared.h"
#include "service/request.h"
#include "service/service.h"

namespace whyq {
namespace {

constexpr const char* kReviewQuery =
    "node r Review rating >= i:3\nnode p Product\nedge r p reviewOf\n"
    "output r\n";

// Reviews 0..3 (ratings 2..5) of product 4; node 5 is an unrelated Vendor.
Graph ReviewGraph() {
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) {
    NodeId v = b.AddNode("Review");
    b.SetAttr(v, "rating", Value(static_cast<int64_t>(i + 2)));
  }
  NodeId p = b.AddNode("Product");
  for (NodeId r = 0; r < 4; ++r) b.AddEdge(r, p, "reviewOf");
  b.AddNode("Vendor");
  return b.Build();
}

Query MustParse(const std::string& text, const Graph& g) {
  std::string err;
  std::optional<Query> q = ParseQuery(text, g, &err);
  EXPECT_TRUE(q.has_value()) << err;
  return *q;
}

// An update the review query provably does not depend on: a fresh Vendor
// node with a fresh attribute and a fresh edge label.
UpdateBatch DisjointBatch(const Graph& g) {
  UpdateBatch batch;
  NodeId fresh = static_cast<NodeId>(g.node_count());
  batch.ops.push_back(UpdateOp::AddNode("Vendor"));
  batch.ops.push_back(UpdateOp::SetAttr(fresh, "zip", Value(int64_t{94110})));
  batch.ops.push_back(UpdateOp::AddEdge(fresh, 5, "ships"));
  return batch;
}

// An update that touches the query's literal attribute.
UpdateBatch IntersectingBatch() {
  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::SetAttr(0, "rating", Value(int64_t{5})));
  return batch;
}

// ---------------------------------------------------------------------------
// The cache-key bugfix: graph identity and epoch are part of the key
// ---------------------------------------------------------------------------

TEST(PreparedKeyTest, TwoGraphsSameQueryTextGetDistinctKeys) {
  // Regression: the key used to be (semantics, paths, canonical query)
  // only, so two services sharing one cache — or one service whose graph
  // was swapped — could serve answers computed against the wrong graph.
  Graph g1 = ReviewGraph();
  Graph g2 = ReviewGraph();
  ASSERT_NE(g1.identity(), g2.identity());
  Query q1 = MustParse(kReviewQuery, g1);
  Query q2 = MustParse(kReviewQuery, g2);
  EXPECT_NE(PreparedQueryKey(q1, g1, MatchSemantics::kIsomorphism, 8),
            PreparedQueryKey(q2, g2, MatchSemantics::kIsomorphism, 8));
}

TEST(PreparedKeyTest, EpochsOfOneGraphGetDistinctKeys) {
  Graph g = ReviewGraph();
  Graph next;
  UpdateResult r;
  ASSERT_TRUE(g.ApplyUpdate(DisjointBatch(g), &next, &r)) << r.error;
  Query q = MustParse(kReviewQuery, g);
  std::string k0 = PreparedQueryKey(q, g, MatchSemantics::kIsomorphism, 8);
  std::string k1 = PreparedQueryKey(q, next, MatchSemantics::kIsomorphism, 8);
  EXPECT_NE(k0, k1);
  EXPECT_EQ(k0.find(GraphEpochPrefix(g)), 0u);
  EXPECT_EQ(k1.find(GraphEpochPrefix(next)), 0u);
}

// ---------------------------------------------------------------------------
// Precise invalidation at the cache layer
// ---------------------------------------------------------------------------

TEST(PreparedCacheDeltaTest, DropsIntersectingRekeysDisjointVerbatim) {
  Graph g = ReviewGraph();
  // Two cached queries: one on the review footprint, one only on Vendor.
  Query review_q = MustParse(kReviewQuery, g);
  Query vendor_q = MustParse("node v Vendor\noutput v\n", g);
  bool complete = false;
  std::shared_ptr<const PreparedQuery> review_p =
      PrepareQuery(g, review_q, MatchSemantics::kIsomorphism, 8, nullptr,
                   &complete);
  ASSERT_TRUE(complete);
  std::shared_ptr<const PreparedQuery> vendor_p =
      PrepareQuery(g, vendor_q, MatchSemantics::kIsomorphism, 8, nullptr,
                   &complete);
  ASSERT_TRUE(complete);
  std::string review_key =
      PreparedQueryKey(review_q, g, MatchSemantics::kIsomorphism, 8);
  std::string vendor_key =
      PreparedQueryKey(vendor_q, g, MatchSemantics::kIsomorphism, 8);

  PreparedQueryCache cache(16);
  cache.Put(review_key, review_p);
  cache.Put(vendor_key, vendor_p);

  Graph next;
  UpdateResult r;
  ASSERT_TRUE(g.ApplyUpdate(IntersectingBatch(), &next, &r)) << r.error;
  PreparedQueryCache::DeltaOutcome outcome =
      cache.ApplyDelta(GraphEpochPrefix(g), GraphEpochPrefix(next), r.delta);
  EXPECT_EQ(outcome.invalidated, 1u);  // the review query: rating changed
  EXPECT_EQ(outcome.rekeyed, 1u);      // the vendor query: untouched

  // The rekeyed entry serves under the new epoch, same artifacts object —
  // no re-preparation, no re-sampling.
  EXPECT_EQ(cache.Get(
                PreparedQueryKey(vendor_q, next, MatchSemantics::kIsomorphism,
                                 8))
                .get(),
            vendor_p.get());
  // The intersecting entry is gone under either epoch's key.
  EXPECT_EQ(cache.Get(review_key), nullptr);
  EXPECT_EQ(cache.Get(PreparedQueryKey(review_q, next,
                                       MatchSemantics::kIsomorphism, 8)),
            nullptr);
}

// ---------------------------------------------------------------------------
// Service-level behavior
// ---------------------------------------------------------------------------

ServiceRequest WhyRequest() {
  ServiceRequest r;
  r.kind = RequestKind::kWhy;
  r.query_text = kReviewQuery;
  r.entities = {1};  // review with rating 3, an answer
  r.config.guard_m = 0;
  return r;
}

TEST(UpdateServiceTest, UpdateBumpsCountersAndInvalidatesPrecisely) {
  ServiceConfig sc;
  sc.workers = 1;
  WhyqService service(ReviewGraph(), sc);

  ServiceResponse r0 = service.Execute(WhyRequest());
  ASSERT_EQ(r0.status, ResponseStatus::kOk);
  EXPECT_FALSE(r0.cache_hit);

  // Disjoint update: the cached entry survives (rekeyed) and keeps hitting.
  UpdateResult ur;
  ASSERT_TRUE(service.ApplyUpdate(DisjointBatch(*service.graph()), &ur))
      << ur.error;
  ServiceResponse r1 = service.Execute(WhyRequest());
  ASSERT_EQ(r1.status, ResponseStatus::kOk);
  EXPECT_TRUE(r1.cache_hit);

  // Intersecting update: dropped, the next request rebuilds.
  ASSERT_TRUE(service.ApplyUpdate(IntersectingBatch(), &ur)) << ur.error;
  ServiceResponse r2 = service.Execute(WhyRequest());
  ASSERT_EQ(r2.status, ResponseStatus::kOk);
  EXPECT_FALSE(r2.cache_hit);

  StatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.updates_applied, 2u);
  EXPECT_EQ(stats.graph_generation, 2u);
  EXPECT_EQ(stats.cache_invalidated, 1u);
  EXPECT_EQ(stats.cache_rekeyed, 1u);
}

TEST(UpdateServiceTest, FrozenAndInvalidBatchesLeaveTheEpochAlone) {
  ServiceConfig sc;
  sc.workers = 1;
  WhyqService service(ReviewGraph(), sc);
  UpdateBatch bad;
  bad.ops.push_back(UpdateOp::DeleteNode(999));
  UpdateResult ur;
  EXPECT_FALSE(service.ApplyUpdate(bad, &ur));
  EXPECT_EQ(ur.status, UpdateStatus::kNoSuchNode);
  EXPECT_EQ(service.graph()->generation(), 0u);
  EXPECT_EQ(service.Stats().updates_applied, 0u);
}

TEST(UpdateServiceTest, ResponsesCarryTheEpochTheyRanAgainst) {
  ServiceConfig sc;
  sc.workers = 1;
  WhyqService service(ReviewGraph(), sc);
  ServiceResponse r0 = service.Execute(WhyRequest());
  ASSERT_NE(r0.graph, nullptr);
  EXPECT_EQ(r0.graph->generation(), 0u);
  size_t nodes_before = r0.graph->node_count();

  UpdateResult ur;
  ASSERT_TRUE(service.ApplyUpdate(DisjointBatch(*service.graph()), &ur));
  ServiceResponse r1 = service.Execute(WhyRequest());
  ASSERT_NE(r1.graph, nullptr);
  EXPECT_EQ(r1.graph->generation(), 1u);
  EXPECT_EQ(r1.graph->node_count(), nodes_before + 1);
  // The pinned old epoch is still fully readable after the publish.
  EXPECT_EQ(r0.graph->node_count(), nodes_before);
}

// ---------------------------------------------------------------------------
// Readers vs. writers: epoch-consistent reads under concurrent updates.
// TSan (the CI job runs this suite under -fsanitize=thread) proves the
// pin-and-publish protocol has no data races; the assertions prove no
// reader ever observes a half-applied batch.
// ---------------------------------------------------------------------------

TEST(UpdateServiceTest, ConcurrentReadersDuringApplyUpdateStayConsistent) {
  ServiceConfig sc;
  sc.workers = 2;
  sc.cache_capacity = 8;
  WhyqService service(ReviewGraph(), sc);
  const size_t base_nodes = service.graph()->node_count();

  std::atomic<bool> stop{false};
  std::atomic<size_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        ServiceResponse r = service.Execute(WhyRequest());
        ASSERT_EQ(r.status, ResponseStatus::kOk);
        ASSERT_NE(r.graph, nullptr);
        // Epoch consistency: on the epoch this request pinned, the node
        // count determines the generation exactly (each batch below adds
        // one Vendor node). A torn read would break the equality.
        ASSERT_EQ(r.graph->node_count(), base_nodes + r.graph->generation());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Interleave for real: require reader progress between publishes, else
  // the writer can finish every batch before a reader pins its first epoch.
  auto wait_for_reads = [&](size_t target) {
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (reads.load(std::memory_order_relaxed) < target) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::yield();
    }
    return true;
  };

  constexpr uint64_t kUpdates = 20;
  bool interleaved = wait_for_reads(1);
  bool applied = true;
  std::string first_error;
  for (uint64_t i = 0; interleaved && applied && i < kUpdates; ++i) {
    UpdateResult ur;
    // Pin the current epoch to build a batch valid against it.
    std::shared_ptr<const Graph> cur = service.graph();
    applied = service.ApplyUpdate(DisjointBatch(*cur), &ur);
    if (!applied) first_error = ur.error;
    interleaved = applied && wait_for_reads(reads.load() + 1);
  }
  stop.store(true);
  for (std::thread& th : readers) th.join();

  ASSERT_TRUE(applied) << first_error;
  ASSERT_TRUE(interleaved) << "readers made no progress between updates";
  EXPECT_EQ(service.graph()->generation(), kUpdates);
  EXPECT_EQ(service.Stats().updates_applied, kUpdates);
  EXPECT_GE(reads.load(), kUpdates);
}

}  // namespace
}  // namespace whyq
