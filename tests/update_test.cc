// Graph::ApplyUpdate: op semantics, atomic validation, epoch bookkeeping,
// copy-on-write column sharing, frozen-graph rejection, batch-file
// round-trips — and the load-bearing equivalence property: incremental
// materialization and ApplyUpdateByRebuild yield byte-identical graphs
// (same text serialization, same fingerprint) for every valid batch.

#include "graph/update.h"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/bsbm.h"
#include "graph/graph.h"
#include "graph/graph_io.h"
#include "graph/snapshot.h"
#include "matcher/match_engine.h"
#include "query/query_parser.h"

namespace whyq {
namespace {

// 0 -> 1 -> 2 labeled "N" with idx attributes, plus a "B"-labeled spare.
Graph SmallGraph() {
  GraphBuilder b;
  for (int i = 0; i < 3; ++i) {
    NodeId v = b.AddNode("N");
    b.SetAttr(v, "idx", Value(static_cast<int64_t>(i)));
  }
  b.AddNode("B");
  b.AddEdge(0, 1, "next");
  b.AddEdge(1, 2, "next");
  return b.Build();
}

std::string Serialize(const Graph& g) {
  std::ostringstream os;
  WriteGraph(g, os);
  return os.str();
}

UpdateResult MustApply(const Graph& g, const UpdateBatch& batch, Graph* out) {
  UpdateResult result;
  EXPECT_TRUE(g.ApplyUpdate(batch, out, &result))
      << UpdateStatusName(result.status) << ": " << result.error;
  return result;
}

// ---------------------------------------------------------------------------
// Op semantics
// ---------------------------------------------------------------------------

TEST(UpdateOpsTest, AddNodeAllocatesDenseIdsSequentially) {
  Graph g = SmallGraph();
  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::AddNode("N"));
  batch.ops.push_back(UpdateOp::AddNode("M"));
  // Ops apply sequentially: the node added above is addressable below.
  batch.ops.push_back(
      UpdateOp::AddEdge(static_cast<NodeId>(g.node_count()),
                        static_cast<NodeId>(g.node_count() + 1), "next"));
  Graph next;
  UpdateResult r = MustApply(g, batch, &next);
  EXPECT_EQ(next.node_count(), g.node_count() + 2);
  EXPECT_EQ(next.edge_count(), g.edge_count() + 1);
  EXPECT_EQ(r.delta.nodes_added, 2u);
  EXPECT_EQ(r.delta.edges_added, 1u);
  SymbolId m = *next.node_labels().Find("M");
  NodeSpan ms = next.NodesWithLabel(m);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0], static_cast<NodeId>(g.node_count() + 1));
}

TEST(UpdateOpsTest, DeleteNodeTombstonesAndDetaches) {
  Graph g = SmallGraph();
  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::DeleteNode(1));
  Graph next;
  UpdateResult r = MustApply(g, batch, &next);
  // Ids stay dense and allocated; the node just vanishes from every index.
  EXPECT_EQ(next.node_count(), g.node_count());
  EXPECT_EQ(r.delta.nodes_deleted, 1u);
  EXPECT_EQ(next.attrs(1).size(), 0u);
  EXPECT_EQ(next.out_edges(1).size(), 0u);
  EXPECT_EQ(next.in_edges(1).size(), 0u);
  // Its incident edges are gone from the surviving endpoints too.
  EXPECT_EQ(next.out_edges(0).size(), 0u);
  EXPECT_EQ(next.in_edges(2).size(), 0u);
  EXPECT_EQ(next.edge_count(), 0u);
  // Re-bucketed under the tombstone label, out of its old bucket.
  SymbolId n_label = *next.node_labels().Find("N");
  for (NodeId v : next.NodesWithLabel(n_label)) EXPECT_NE(v, 1u);
  std::optional<SymbolId> dead = next.node_labels().Find(kTombstoneLabel);
  ASSERT_TRUE(dead.has_value());
  NodeSpan dead_nodes = next.NodesWithLabel(*dead);
  ASSERT_EQ(dead_nodes.size(), 1u);
  EXPECT_EQ(dead_nodes[0], 1u);
}

TEST(UpdateOpsTest, DuplicateAddEdgeIsANoOp) {
  Graph g = SmallGraph();
  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::AddEdge(0, 1, "next"));  // already exists
  batch.ops.push_back(UpdateOp::AddEdge(0, 2, "next"));  // new
  Graph next;
  UpdateResult r = MustApply(g, batch, &next);
  EXPECT_EQ(r.delta.edges_added, 1u);
  EXPECT_EQ(next.edge_count(), g.edge_count() + 1);
}

TEST(UpdateOpsTest, SetAttrOverwritesAndDelAttrRemoves) {
  Graph g = SmallGraph();
  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::SetAttr(0, "idx", Value(int64_t{42})));
  batch.ops.push_back(UpdateOp::SetAttr(0, "fresh", Value(std::string("x"))));
  batch.ops.push_back(UpdateOp::DelAttr(1, "idx"));
  Graph next;
  UpdateResult r = MustApply(g, batch, &next);
  EXPECT_EQ(r.delta.attrs_set, 2u);
  EXPECT_EQ(r.delta.attrs_deleted, 1u);
  EXPECT_EQ(next.GetAttr(0, *next.attr_names().Find("idx"))->as_int(), 42);
  EXPECT_EQ(next.GetAttr(0, *next.attr_names().Find("fresh"))->as_string(),
            "x");
  EXPECT_EQ(next.GetAttr(1, *next.attr_names().Find("idx")), nullptr);
}

// ---------------------------------------------------------------------------
// Validation: typed failures, atomicity
// ---------------------------------------------------------------------------

TEST(UpdateValidationTest, TypedStatusesAndFirstBadOpIndex) {
  Graph g = SmallGraph();
  struct Case {
    UpdateOp op;
    UpdateStatus want;
  };
  const Case cases[] = {
      {UpdateOp::DeleteNode(99), UpdateStatus::kNoSuchNode},
      {UpdateOp::AddEdge(0, 99, "next"), UpdateStatus::kNoSuchNode},
      {UpdateOp::DeleteEdge(0, 2, "next"), UpdateStatus::kNoSuchEdge},
      {UpdateOp::DelAttr(3, "idx"), UpdateStatus::kNoSuchAttr},
      {UpdateOp::AddNode(""), UpdateStatus::kBadOp},
      {UpdateOp::AddNode(kTombstoneLabel), UpdateStatus::kBadOp},
  };
  for (const Case& c : cases) {
    UpdateBatch batch;
    batch.ops.push_back(UpdateOp::SetAttr(0, "idx", Value(int64_t{7})));
    batch.ops.push_back(c.op);
    Graph next;
    UpdateResult result;
    EXPECT_FALSE(g.ApplyUpdate(batch, &next, &result));
    EXPECT_EQ(result.status, c.want) << result.error;
    EXPECT_EQ(result.failed_op, 1u);
    EXPECT_FALSE(result.error.empty());
    // Atomic: the valid first op must not have leaked anywhere.
    EXPECT_EQ(next.node_count(), 0u);
    EXPECT_EQ(g.GetAttr(0, *g.attr_names().Find("idx"))->as_int(), 0);
  }
}

TEST(UpdateValidationTest, TombstonedNodeIsNoSuchNode) {
  Graph g = SmallGraph();
  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::DeleteNode(2));
  batch.ops.push_back(UpdateOp::SetAttr(2, "idx", Value(int64_t{1})));
  Graph next;
  UpdateResult result;
  EXPECT_FALSE(g.ApplyUpdate(batch, &next, &result));
  EXPECT_EQ(result.status, UpdateStatus::kNoSuchNode);
  EXPECT_EQ(result.failed_op, 1u);
}

// ---------------------------------------------------------------------------
// Epochs and copy-on-write sharing
// ---------------------------------------------------------------------------

TEST(UpdateEpochTest, GenerationBumpsIdentityPersists) {
  Graph g = SmallGraph();
  EXPECT_EQ(g.generation(), 0u);
  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::AddNode("N"));
  Graph g1;
  MustApply(g, batch, &g1);
  Graph g2;
  MustApply(g1, batch, &g2);
  EXPECT_EQ(g1.generation(), 1u);
  EXPECT_EQ(g2.generation(), 2u);
  EXPECT_EQ(g1.identity(), g.identity());
  EXPECT_EQ(g2.identity(), g.identity());
  // Distinct logical graphs get distinct identities.
  EXPECT_NE(SmallGraph().identity(), g.identity());
}

TEST(UpdateEpochTest, AttrOnlyBatchSharesAdjacencyStorage) {
  Graph g = SmallGraph();
  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::SetAttr(0, "idx", Value(int64_t{9})));
  Graph next;
  MustApply(g, batch, &next);
  // Adjacency untouched by the batch: the epochs alias the same rows.
  EXPECT_EQ(next.out_edges(0).data(), g.out_edges(0).data());
  EXPECT_EQ(next.in_edges(2).data(), g.in_edges(2).data());
  // Attribute storage was rebuilt; the base epoch kept its value.
  EXPECT_NE(next.attrs(0).data(), g.attrs(0).data());
  EXPECT_EQ(g.GetAttr(0, *g.attr_names().Find("idx"))->as_int(), 0);
}

TEST(UpdateEpochTest, EdgeOnlyBatchSharesAttributeStorage) {
  Graph g = SmallGraph();
  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::AddEdge(2, 0, "next"));
  Graph next;
  MustApply(g, batch, &next);
  EXPECT_EQ(next.attrs(0).data(), g.attrs(0).data());
  EXPECT_NE(next.out_edges(2).data(), g.out_edges(2).data());
}

// ---------------------------------------------------------------------------
// Frozen (snapshot-backed) graphs
// ---------------------------------------------------------------------------

TEST(UpdateFrozenTest, SnapshotBackedGraphRejectsUpdatesTyped) {
  Graph g = SmallGraph();
  std::string path = ::testing::TempDir() + "whyq_update_frozen.snap";
  std::string err;
  ASSERT_TRUE(GraphSnapshot::Write(g, path, &err)) << err;
  std::unique_ptr<GraphSnapshot> snap = GraphSnapshot::Load(path, &err);
  ASSERT_NE(snap, nullptr) << err;
  EXPECT_FALSE(g.frozen());
  EXPECT_TRUE(snap->graph().frozen());
  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::AddNode("N"));
  Graph next;
  UpdateResult result;
  EXPECT_FALSE(snap->graph().ApplyUpdate(batch, &next, &result));
  EXPECT_EQ(result.status, UpdateStatus::kFrozen);
  EXPECT_FALSE(result.error.empty());
  EXPECT_STREQ(UpdateStatusName(UpdateStatus::kFrozen), "frozen");
}

// ---------------------------------------------------------------------------
// Batch text format round-trip
// ---------------------------------------------------------------------------

TEST(UpdateIoTest, BatchRoundTripsThroughTextFormat) {
  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::AddNode("Review"));
  batch.ops.push_back(UpdateOp::DeleteNode(3));
  batch.ops.push_back(UpdateOp::AddEdge(4, 1, "reviewOf"));
  batch.ops.push_back(UpdateOp::DeleteEdge(0, 1, "next"));
  batch.ops.push_back(UpdateOp::SetAttr(4, "rating", Value(int64_t{5})));
  // Whitespace-free, like every string in the graph text format: both
  // formats tokenize on spaces (a format-wide constraint, not update-only).
  batch.ops.push_back(
      UpdateOp::SetAttr(4, "title", Value(std::string("a_b"))));
  batch.ops.push_back(UpdateOp::DelAttr(2, "idx"));
  std::ostringstream os;
  WriteUpdateBatch(batch, os);
  std::istringstream is(os.str());
  std::string err;
  std::optional<UpdateBatch> back = ReadUpdateBatch(is, &err);
  ASSERT_TRUE(back.has_value()) << err;
  ASSERT_EQ(back->size(), batch.size());
  std::ostringstream os2;
  WriteUpdateBatch(*back, os2);
  EXPECT_EQ(os.str(), os2.str());
}

TEST(UpdateIoTest, ParserReportsLineNumberedErrors) {
  std::istringstream is("# comment\nAN Review\nXX what\n");
  std::string err;
  EXPECT_FALSE(ReadUpdateBatch(is, &err).has_value());
  EXPECT_NE(err.find("3"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// The equivalence property: incremental == rebuild, byte for byte
// ---------------------------------------------------------------------------

// Random-but-valid batch against `g`: every op drawn against the graph
// state the preceding ops left (mirrors how the updater validates), so
// tombstoned nodes are never referenced again within the batch.
UpdateBatch RandomBatch(const Graph& g, size_t ops, Rng& rng) {
  UpdateBatch batch;
  std::vector<NodeId> alive;  // fresh graphs carry no tombstones
  for (NodeId v = 0; v < g.node_count(); ++v) alive.push_back(v);
  size_t next_id = g.node_count();
  for (size_t i = 0; i < ops; ++i) {
    switch (rng.Index(5)) {
      case 0:
        batch.ops.push_back(
            UpdateOp::AddNode(rng.Chance(0.5) ? "Fresh" : "Review"));
        alive.push_back(static_cast<NodeId>(next_id++));
        break;
      case 1:
        batch.ops.push_back(UpdateOp::AddEdge(alive[rng.Index(alive.size())],
                                              alive[rng.Index(alive.size())],
                                              "touches"));
        break;
      case 2:
        batch.ops.push_back(UpdateOp::SetAttr(
            alive[rng.Index(alive.size())], "heat",
            Value(static_cast<int64_t>(rng.Uniform(0, 100)))));
        break;
      case 3:
        batch.ops.push_back(UpdateOp::SetAttr(
            alive[rng.Index(alive.size())], "tag",
            Value(std::string(rng.Chance(0.5) ? "hot" : "cold"))));
        break;
      default: {
        size_t pick = rng.Index(alive.size());
        batch.ops.push_back(UpdateOp::DeleteNode(alive[pick]));
        alive.erase(alive.begin() + static_cast<long>(pick));
        break;
      }
    }
  }
  return batch;
}

void ExpectEquivalent(const Graph& base, const UpdateBatch& batch) {
  Graph inc;
  Graph reb;
  UpdateResult r_inc;
  UpdateResult r_reb;
  ASSERT_TRUE(base.ApplyUpdate(batch, &inc, &r_inc))
      << UpdateStatusName(r_inc.status) << ": " << r_inc.error;
  ASSERT_TRUE(ApplyUpdateByRebuild(base, batch, &reb, &r_reb))
      << UpdateStatusName(r_reb.status) << ": " << r_reb.error;
  EXPECT_EQ(Serialize(inc), Serialize(reb));
  EXPECT_EQ(GraphFingerprint(inc), GraphFingerprint(reb));
  EXPECT_EQ(r_inc.delta.ToString(), r_reb.delta.ToString());
}

TEST(UpdateEquivalenceTest, HandPickedBatchesOnSmallGraph) {
  Graph g = SmallGraph();
  {
    UpdateBatch b;
    b.ops.push_back(UpdateOp::AddNode("N"));
    b.ops.push_back(UpdateOp::DeleteNode(1));
    b.ops.push_back(UpdateOp::AddEdge(0, 2, "skip"));
    b.ops.push_back(UpdateOp::SetAttr(3, "idx", Value(int64_t{3})));
    b.ops.push_back(UpdateOp::DelAttr(0, "idx"));
    ExpectEquivalent(g, b);
  }
  {
    UpdateBatch b;  // delete then re-add an edge with the same endpoints
    b.ops.push_back(UpdateOp::DeleteEdge(0, 1, "next"));
    b.ops.push_back(UpdateOp::AddEdge(0, 1, "next"));
    ExpectEquivalent(g, b);
  }
}

TEST(UpdateEquivalenceTest, RandomBatchSweepOnBsbm) {
  BsbmConfig cfg;
  cfg.products = 40;
  cfg.seed = 11;
  Graph g = GenerateBsbm(cfg);
  Rng rng(1234);
  for (int round = 0; round < 6; ++round) {
    UpdateBatch batch = RandomBatch(g, 1 + rng.Index(40), rng);
    ExpectEquivalent(g, batch);
  }
}

TEST(UpdateEquivalenceTest, ChainedEpochsStayEquivalent) {
  BsbmConfig cfg;
  cfg.products = 25;
  cfg.seed = 5;
  Graph g = GenerateBsbm(cfg);
  Rng rng(99);
  // Walk the incremental chain; at every epoch the rebuild path applied to
  // the SAME base must agree byte for byte.
  for (int round = 0; round < 4; ++round) {
    UpdateBatch batch = RandomBatch(g, 12, rng);
    Graph reb;
    UpdateResult r;
    ASSERT_TRUE(ApplyUpdateByRebuild(g, batch, &reb, &r)) << r.error;
    Graph inc;
    ASSERT_TRUE(g.ApplyUpdate(batch, &inc, &r)) << r.error;
    ASSERT_EQ(Serialize(inc), Serialize(reb));
    ASSERT_EQ(inc.generation(), g.generation() + 1);
    g = std::move(inc);
  }
}

TEST(UpdateEquivalenceTest, AnswersAgreeUnderBothSemantics) {
  BsbmConfig cfg;
  cfg.products = 30;
  cfg.seed = 3;
  Graph g = GenerateBsbm(cfg);
  Rng rng(7);
  UpdateBatch batch = RandomBatch(g, 25, rng);
  Graph inc;
  Graph reb;
  UpdateResult r;
  ASSERT_TRUE(g.ApplyUpdate(batch, &inc, &r)) << r.error;
  ASSERT_TRUE(ApplyUpdateByRebuild(g, batch, &reb, &r)) << r.error;
  const std::string text =
      "node r Review rating >= i:3\nnode p Product\nedge r p reviewOf\n"
      "output r\n";
  for (MatchSemantics s :
       {MatchSemantics::kIsomorphism, MatchSemantics::kSimulation}) {
    std::optional<Query> qi = ParseQuery(text, inc, nullptr);
    std::optional<Query> qr = ParseQuery(text, reb, nullptr);
    ASSERT_TRUE(qi.has_value());
    ASSERT_TRUE(qr.has_value());
    std::vector<NodeId> ai = MakeMatchEngine(inc, s)->MatchOutput(*qi);
    std::vector<NodeId> ar = MakeMatchEngine(reb, s)->MatchOutput(*qr);
    EXPECT_EQ(ai, ar) << MatchSemanticsName(s);
  }
}

}  // namespace
}  // namespace whyq
