#!/bin/sh
# Documentation consistency checks, run by the CI docs job and the
# docs_check ctest entry:
#   1. every relative markdown link in *.md / docs/*.md resolves to a file
#      or directory in the repo;
#   2. every subcommand dispatched by tools/whyq_cli.cc appears in the
#      usage comment at the top of that file AND in README.md;
#   3. every --flag the CLI parses appears in README.md (and vice versa:
#      every --flag README claims must be parsed by the CLI);
#   4. docs/SNAPSHOT_FORMAT.md stays honest: every `Struct.field` row of
#      its field-index appendix and every kSnapshot* constant it cites
#      must literally exist in src/graph/snapshot.h (the header is the
#      format's single source of truth — renames must update the spec);
#   5. the update-batch text format stays honest: every op mnemonic the
#      parser in src/graph/graph_io.cc accepts must be documented in the
#      graph_io.h grammar comment AND in README.md, and vice versa — a
#      mnemonic README documents must be parsed;
#   6. docs/PLAN_FORMAT.md stays honest: every `Struct.field` row of its
#      field-index appendix and every kPlan* constant it cites must
#      literally exist in src/service/plan.h (same contract as 4);
#   7. every whyq-lint rule name emitted by tools/lint/lint.cc is
#      documented in docs/ARCHITECTURE.md — a new rule must land with its
#      rationale, or the docs job fails.
# Pure grep/sed — no dependencies beyond POSIX sh.
set -u

cd "$(dirname "$0")/.." || exit 1
fail=0

err() {
  echo "check_docs: $1" >&2
  fail=1
}

# --- 1. relative markdown links -------------------------------------------
md_files="$(ls ./*.md 2>/dev/null; ls docs/*.md 2>/dev/null)"
for f in $md_files; do
  case "$f" in
    # Scraped reference material (arXiv extracts) keeps its original
    # image/figure links; only repo-authored docs must resolve.
    ./PAPERS.md|./SNIPPETS.md) continue ;;
  esac
  dir=$(dirname "$f")
  # Extract (text](target) pairs; keep the target, drop URLs and anchors.
  grep -o ']([^)]*)' "$f" | sed 's/^](//; s/)$//' | while read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path=${target%%#*}
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "check_docs: $f: broken relative link '$target'" >&2
      echo broken > .check_docs_failed
    fi
  done
done
if [ -f .check_docs_failed ]; then
  rm -f .check_docs_failed
  fail=1
fi

# --- 2. CLI subcommands documented ----------------------------------------
cli=tools/whyq_cli.cc
subcommands=$(sed -n 's/^  if (cmd == "\([a-z0-9-]*\)").*/\1/p' "$cli")
[ -n "$subcommands" ] || err "no subcommands extracted from $cli"
for cmd in $subcommands; do
  grep -q "whyq_cli $cmd" "$cli" ||
    err "$cli: subcommand '$cmd' missing from the usage comment"
  grep -q "$cmd" README.md ||
    err "README.md: subcommand '$cmd' undocumented"
done

# --- 3. CLI flags <-> README ----------------------------------------------
cli_flags=$(sed -n 's/.*value_of("\(--[a-z-]*\)").*/\1/p' "$cli" | sort -u)
[ -n "$cli_flags" ] || err "no flags extracted from $cli"
for flag in $cli_flags; do
  grep -q -- "\\$flag" README.md ||
    err "README.md: flag '$flag' undocumented"
done
readme_flags=$(grep -o -- '--[a-z][a-z-]*=' README.md | sed 's/=$//' | sort -u)
for flag in $readme_flags; do
  echo "$cli_flags" | grep -qx -- "$flag" ||
    err "README.md documents '$flag' but $cli does not parse it"
done

# --- 4. SNAPSHOT_FORMAT.md <-> snapshot.h ---------------------------------
spec=docs/SNAPSHOT_FORMAT.md
hdr=src/graph/snapshot.h
if [ -f "$spec" ] && [ -f "$hdr" ]; then
  fields=$(sed -n '/^## Appendix: field index/,$p' "$spec" |
           grep -o '`[A-Za-z]*\.[a-z_]*`' | tr -d '\140' | sort -u)
  [ -n "$fields" ] ||
    err "$spec: no Struct.field entries found in the field-index appendix"
  for f in $fields; do
    struct=${f%%.*}
    field=${f#*.}
    grep -q "struct $struct" "$hdr" ||
      err "$spec: struct '$struct' does not exist in $hdr"
    grep -qw "$field" "$hdr" ||
      err "$spec: field '$f' — '$field' does not appear in $hdr"
  done
  for c in $(grep -o 'kSnapshot[A-Za-z]*' "$spec" | sort -u); do
    grep -qw "$c" "$hdr" ||
      err "$spec: constant '$c' does not exist in $hdr"
  done
else
  err "missing $spec or $hdr"
fi

# --- 5. update-batch mnemonics <-> docs -----------------------------------
io_cc=src/graph/graph_io.cc
io_h=src/graph/graph_io.h
parsed=$(grep -o 'kind == "[A-Z][A-Z]"' "$io_cc" | grep -o '"[A-Z][A-Z]"' |
         tr -d '"' | sort -u)
[ -n "$parsed" ] || err "no update-op mnemonics extracted from $io_cc"
for op in $parsed; do
  grep -q "^///   $op " "$io_h" ||
    err "$io_h: update op '$op' missing from the grammar comment"
  grep -q "^$op " README.md ||
    err "README.md: update op '$op' undocumented"
done
# README's fenced grammar lines (two capitals at column 0) must be parsed.
for op in $(grep -o '^[A-Z][A-Z] ' README.md | tr -d ' ' | sort -u); do
  echo "$parsed" | grep -qx "$op" ||
    err "README.md documents update op '$op' but $io_cc does not parse it"
done

# --- 6. PLAN_FORMAT.md <-> plan.h -----------------------------------------
pspec=docs/PLAN_FORMAT.md
phdr=src/service/plan.h
if [ -f "$pspec" ] && [ -f "$phdr" ]; then
  pfields=$(sed -n '/^## Appendix: field index/,$p' "$pspec" |
            grep -o '`[A-Za-z]*\.[a-z_]*`' | tr -d '\140' | sort -u)
  [ -n "$pfields" ] ||
    err "$pspec: no Struct.field entries found in the field-index appendix"
  for f in $pfields; do
    struct=${f%%.*}
    field=${f#*.}
    grep -q "struct $struct" "$phdr" ||
      err "$pspec: struct '$struct' does not exist in $phdr"
    grep -qw "$field" "$phdr" ||
      err "$pspec: field '$f' — '$field' does not appear in $phdr"
  done
  for c in $(grep -o 'kPlan[A-Za-z]*' "$pspec" | sort -u); do
    grep -qw "$c" "$phdr" ||
      err "$pspec: constant '$c' does not exist in $phdr"
  done
else
  err "missing $pspec or $phdr"
fi

# --- 7. whyq-lint rules <-> ARCHITECTURE.md -------------------------------
lint_h=tools/lint/lint.h
lint_cc=tools/lint/lint.cc
arch=docs/ARCHITECTURE.md
# Rule names are the first word of each catalog entry in lint.h (three
# spaces of comment indent; continuation lines are indented deeper).
rules=$(sed -n 's|^//   \([a-z][a-z-]*\) .*|\1|p' "$lint_h" | sort -u)
[ -n "$rules" ] || err "no rule names extracted from the $lint_h catalog"
for r in $rules; do
  grep -q "\*\*$r\*\*" "$arch" ||
    err "$arch: whyq-lint rule '$r' undocumented (add a **$r** entry)"
done
# Every rule id lint.cc emits (the quoted hyphenated tokens) must be in
# the lint.h catalog, and therefore documented above — a rule cannot land
# without its rationale.
for r in $(grep -o '"[a-z][a-z]*-[a-z-]*"' "$lint_cc" | tr -d '"' | sort -u); do
  echo "$rules" | grep -qx "$r" ||
    err "$lint_h: rule '$r' emitted by $lint_cc missing from the catalog"
done

if [ "$fail" -eq 0 ]; then
  echo "check_docs: OK (links, subcommands, flags, snapshot spec, update ops, plan spec, lint rules in sync)"
fi
exit "$fail"
