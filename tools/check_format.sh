#!/bin/sh
# Formatting gate: clang-format --dry-run --Werror over every first-party
# C++ file, using the repo's .clang-format (Google base, 79 cols).
#
#   tools/check_format.sh            # check (CI mode)
#   tools/check_format.sh --fix      # rewrite files in place
#
# Exits 0 when clang-format is not installed (the pinned container lacks
# LLVM tooling; the CI lint job installs it), 0 when clean, 1 otherwise.
set -u

cd "$(dirname "$0")/.." || exit 1

fmt_bin="${CLANG_FORMAT:-clang-format}"
if ! command -v "$fmt_bin" >/dev/null 2>&1; then
  echo "check_format: $fmt_bin not found; skipping (install LLVM to enable)"
  exit 0
fi

mode="--dry-run"
if [ "${1:-}" = "--fix" ]; then
  mode="-i"
fi

files=$(find src tools bench examples tests \
  \( -name '*.h' -o -name '*.cc' -o -name '*.cpp' \) \
  -not -path 'tests/lint_fixtures/*' | sort)

# shellcheck disable=SC2086 — word-splitting of $files is intended.
if ! "$fmt_bin" $mode --Werror --style=file $files; then
  echo "check_format: formatting differences found (run tools/check_format.sh --fix)" >&2
  exit 1
fi
echo "check_format: OK"
exit 0
