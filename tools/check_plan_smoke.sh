#!/bin/sh
# End-to-end smoke test of the persistent-plan pipeline, run by CI and
# the plan_smoke_check ctest entry:
#   1. answer the Fig. 1 why-question three ways — no store, cold store
#      (builds + persists the plan), and a fresh process over the warm
#      store (serves from it) — all three outputs must be byte-equal;
#   2. `explain-plan` must pretty-print the stored file and, given the
#      source graph, declare it valid; given a *different* graph it must
#      reject it (exit 2, never served);
#   3. a corrupted copy of the plan must be rejected end-to-end: the
#      question still answers (rebuilt), byte-equal, and the bad file is
#      deleted + counted plan_store_invalid;
#   4. build plans via serve-batch --stats-json, then restart: the new
#      process's first repeated question must be served from the store
#      (plan_store_hits >= 1) with the reconciliation invariant
#      plan_store_hits + plan_store_misses == cache_misses holding in
#      both runs, and a warm-load run must answer its first question
#      from the prepared cache (python3 required; steps 1-3 run
#      regardless).
# Usage: check_plan_smoke.sh PATH_TO_WHYQ_CLI [WORKDIR]
set -u

cli="${1:?usage: check_plan_smoke.sh PATH_TO_WHYQ_CLI [WORKDIR]}"
cd "${2:-.}" || exit 1

fail() {
  echo "check_plan_smoke: FAIL: $1" >&2
  exit 1
}

ids=$("$cli" figure1 --out=plan_f1 | sed -n 's/^ids: //p')
[ -n "$ids" ] || fail "figure1 printed no ids"
# The line is "a5=N s5=N s8=N s9=N" — our own output, safe to eval.
eval "$ids"

rm -rf plan_sm_store plan_sm_store2
mkdir -p plan_sm_store

# --- 1. no-store / cold-store / warm-restart byte equality -----------------
"$cli" why plan_f1.graph plan_f1.query --entities="$a5,$s5" \
  > plan_sm.base.out || fail "baseline why failed"
"$cli" why plan_f1.graph plan_f1.query --entities="$a5,$s5" \
  --plan-store=plan_sm_store > plan_sm.cold.out ||
  fail "cold-store why failed"
cmp -s plan_sm.base.out plan_sm.cold.out ||
  fail "cold-store answer differs from the storeless answer"
plan=$(ls plan_sm_store/*.plan 2>/dev/null | head -n 1)
[ -n "$plan" ] || fail "cold run persisted no plan file"
# A fresh process over the warm store (the restart): must serve the
# stored plan and produce the identical explanation.
"$cli" why plan_f1.graph plan_f1.query --entities="$a5,$s5" \
  --plan-store=plan_sm_store > plan_sm.warm.out ||
  fail "warm-restart why failed"
cmp -s plan_sm.base.out plan_sm.warm.out ||
  fail "store-served answer differs from the storeless answer"

# --- 2. explain-plan -------------------------------------------------------
info=$("$cli" explain-plan "$plan") || fail "explain-plan failed"
echo "$info" | grep -q 'compiled plan v1' || fail "explain-plan: no version"
for field in 'store key' 'graph fingerprint' 'graph epoch' 'semantics' \
             'answers' 'candidates' 'sampled paths' 'footprint'; do
  echo "$info" | grep -q "$field" ||
    fail "explain-plan: missing field '$field'"
done
"$cli" explain-plan "$plan" plan_f1.graph > plan_sm.valid.out ||
  fail "explain-plan rejected the plan against its own graph"
grep -q 'valid for' plan_sm.valid.out ||
  fail "explain-plan: no validity verdict"
# Against a different graph the plan must be INVALID (exit 2).
"$cli" generate --bsbm=50 --out=plan_sm_other.graph > /dev/null ||
  fail "generate failed"
"$cli" explain-plan "$plan" plan_sm_other.graph > plan_sm.invalid.out 2>&1
[ $? -eq 2 ] || fail "explain-plan accepted a foreign graph"
grep -q 'INVALID' plan_sm.invalid.out ||
  fail "explain-plan: no INVALID verdict for a foreign graph"

# --- 3. a corrupted plan is rebuilt, never served --------------------------
# Flip one byte inside the first section payload (offset 320: the meta
# row — covered by the checksum; padding is not).
cp "$plan" plan_sm.bak
printf '\377' | dd of="$plan" bs=1 seek=321 count=1 conv=notrunc 2>/dev/null ||
  fail "dd corruption failed"
"$cli" why plan_f1.graph plan_f1.query --entities="$a5,$s5" \
  --plan-store=plan_sm_store > plan_sm.corrupt.out ||
  fail "why over a corrupt store failed"
cmp -s plan_sm.base.out plan_sm.corrupt.out ||
  fail "answer over a corrupt store differs (stale plan served?)"
[ ! -f "$plan" ] || {
  # The rebuild re-persists under the same key; the rewritten file must
  # at least differ from the corrupted bytes and validate again.
  "$cli" explain-plan "$plan" plan_f1.graph > /dev/null ||
    fail "corrupt plan file survived un-repaired"
}

# --- 4. serve-batch restart: first repeated question is a store hit --------
if ! command -v python3 >/dev/null 2>&1; then
  echo "check_plan_smoke: python3 not found, skipping serve-batch phase" >&2
  echo "check_plan_smoke: OK (byte-equal, explain-plan, corruption rejected)"
  exit 0
fi

cat > plan_sm.questions <<EOF
why plan_f1.query $a5,$s5
whynot plan_f1.query $s8,$s9
why plan_f1.query $a5,$s5
EOF

# Run 1 (cold store, default memory cache): each distinct question
# misses the empty store once and is persisted; the repeated question
# hits the memory cache and never probes the store, so hits == 0 is
# deterministic. (With --cache=0 here the repeat could legitimately hit
# the plan the background writer flushed moments earlier in this run.)
"$cli" serve-batch plan_f1.graph plan_sm.questions \
  --plan-store=plan_sm_store2 --stats-json=plan_sm.run1.json > /dev/null ||
  fail "serve-batch run 1 failed"
# Run 2: a brand-new process over the same store, --cache=0 so every
# request is a prepare attempt — each must be served from the store.
"$cli" serve-batch plan_f1.graph plan_sm.questions --cache=0 \
  --plan-store=plan_sm_store2 --stats-json=plan_sm.run2.json > /dev/null ||
  fail "serve-batch run 2 failed"

python3 - <<'EOF' || exit 1
import json, sys

def fail(msg):
    print("check_plan_smoke: FAIL:", msg, file=sys.stderr)
    sys.exit(1)

r1 = json.load(open("plan_sm.run1.json"))["counters"]
r2 = json.load(open("plan_sm.run2.json"))["counters"]
for name, c in (("run1", r1), ("run2", r2)):
    if c["plan_store_hits"] + c["plan_store_misses"] != c["cache_misses"]:
        fail(f"{name}: plan_store_hits {c['plan_store_hits']} + misses "
             f"{c['plan_store_misses']} != cache_misses {c['cache_misses']}")
if r1["plan_store_writes"] < 1:
    fail(f"run1 persisted nothing: writes={r1['plan_store_writes']}")
if r1["plan_store_hits"] != 0:
    fail(f"run1 hit a cold store: hits={r1['plan_store_hits']}")
if r2["plan_store_hits"] < 1:
    fail(f"run2 (restart) never hit the store: hits={r2['plan_store_hits']}")
if r2["plan_store_misses"] != 0:
    fail(f"run2 missed a warm store: misses={r2['plan_store_misses']}")
if r2["plan_store_invalid"] != 0:
    fail(f"run2 rejected plans: invalid={r2['plan_store_invalid']}")
print("check_plan_smoke: restart counters OK "
      f"(run1 writes={r1['plan_store_writes']}, run2 "
      f"hits={r2['plan_store_hits']})")
EOF

# Run 3: default in-memory cache -> boot warm-load. The very first
# question must already be a prepared-cache hit ("cached" marker).
"$cli" serve-batch plan_f1.graph plan_sm.questions \
  --plan-store=plan_sm_store2 > plan_sm.run3.out ||
  fail "serve-batch run 3 failed"
first=$(grep '^why line 1 ' plan_sm.run3.out | head -n 1)
echo "$first" | grep -q ' cached ' ||
  fail "warm-loaded process did not answer its first question from cache: $first"

echo "check_plan_smoke: OK (byte-equal, explain-plan, corruption rejected, restart hits store, warm boot cached)"
