#!/bin/sh
# End-to-end smoke test of the whyq_server daemon, run by CI and the
# server_smoke ctest entry:
#   1. start `whyq_cli serve` on an ephemeral port and parse the bound
#      port from its "listening on 127.0.0.1:PORT" line;
#   2. drive a pipelined round-trip from a python3 client: why / stats /
#      malformed requests, checking statuses and id echo;
#   3. send a final burst, SIGTERM the daemon mid-burst, and require that
#      every response line still arrives (admitted work drains) followed
#      by a clean EOF;
#   4. the daemon must exit 0 (clean drain) within the drain deadline;
#   5. the --stats-json dump must exist and reconcile:
#      {"server":{...},"service":{"<graph>":{...}}} with sane counters.
# Usage: check_server_smoke.sh PATH_TO_WHYQ_CLI [WORKDIR]
set -u

cli="${1:?usage: check_server_smoke.sh PATH_TO_WHYQ_CLI [WORKDIR]}"
cd "${2:-.}" || exit 1

if ! command -v python3 >/dev/null 2>&1; then
  echo "check_server_smoke: python3 not found, skipping" >&2
  exit 0
fi

ids=$("$cli" figure1 --out=svr_f1 | sed -n 's/^ids: //p')
[ -n "$ids" ] || { echo "check_server_smoke: figure1 printed no ids" >&2; exit 1; }
# The line is "a5=N s5=N s8=N s9=N" — our own output, safe to eval.
eval "$ids"

rm -f svr_f1.stats.json svr_f1.serve.log
"$cli" serve svr_f1.graph --workers=2 --stats-json=svr_f1.stats.json \
  --stats-period-ms=100 > svr_f1.serve.log 2>&1 &
pid=$!

# The daemon prints the listening line before entering its loop.
port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/^whyq_server listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
         svr_f1.serve.log)
  [ -n "$port" ] && break
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.05
done
[ -n "$port" ] || {
  echo "check_server_smoke: no listening line; log:" >&2
  cat svr_f1.serve.log >&2
  kill "$pid" 2>/dev/null
  exit 1
}

QUERY=$(cat svr_f1.query) PORT="$port" SERVER_PID="$pid" \
  A5="$a5" S5="$s5" python3 - <<'EOF'
import json, os, signal, socket, sys

port = int(os.environ["PORT"])
pid = int(os.environ["SERVER_PID"])
query = os.environ["QUERY"]
a5, s5 = int(os.environ["A5"]), int(os.environ["S5"])

def fail(msg):
    print("check_server_smoke: FAIL:", msg, file=sys.stderr)
    sys.exit(1)

def connect():
    s = socket.create_connection(("127.0.0.1", port), timeout=20)
    return s, s.makefile("r", encoding="utf-8")

def ask(i):
    return json.dumps({"id": i, "question": "why", "query": query,
                       "entities": [a5, s5], "guard": 0}) + "\n"

# --- round-trip: pipelined why + stats + malformed ------------------------
s, r = connect()
burst = ask(1) + ask(2) + '{"id":3,"question":"stats"}\n' + "not json\n"
s.sendall(burst.encode())
got = {}
for _ in range(4):
    line = r.readline()
    if not line:
        fail("connection closed before all round-trip responses")
    resp = json.loads(line)
    got[json.dumps(resp.get("id"))] = resp
for i in ("1", "2"):
    if i not in got or got[i]["status"] != "ok":
        fail(f"why request {i} did not come back ok: {got}")
    if not got[i]["answer"]["found"]:
        fail(f"why request {i} found no explanation")
if got.get("3", {}).get("stats", {}).get("server", {}).get("requests", 0) < 3:
    fail(f"stats response malformed: {got.get('3')}")
if got.get("null", {}).get("status") != "bad_request":
    fail(f"malformed line not answered with bad_request: {got.get('null')}")
s.close()

# --- SIGTERM under a burst: admitted responses drain, then EOF ------------
s, r = connect()
n = 6
s.sendall("".join(ask(10 + i) for i in range(n)).encode())
os.kill(pid, signal.SIGTERM)
drained = 0
while True:
    line = r.readline()
    if not line:
        break
    resp = json.loads(line)
    if resp["status"] not in ("ok", "rejected", "shutdown"):
        fail(f"unexpected drain response: {resp}")
    drained += 1
if drained > n:
    fail(f"more responses than requests: {drained} > {n}")
print(f"check_server_smoke: round-trip ok, drain delivered {drained}/{n} "
      "responses before EOF")
s.close()
EOF
[ $? -eq 0 ] || { kill "$pid" 2>/dev/null; exit 1; }

# The daemon must exit 0 on its own, within the (default 5 s) drain
# deadline plus scheduling slack.
rc=""
for _ in $(seq 1 200); do
  if ! kill -0 "$pid" 2>/dev/null; then
    wait "$pid"
    rc=$?
    break
  fi
  sleep 0.05
done
[ -n "$rc" ] || {
  echo "check_server_smoke: daemon still running after SIGTERM" >&2
  kill -9 "$pid" 2>/dev/null
  exit 1
}
[ "$rc" -eq 0 ] || {
  echo "check_server_smoke: daemon exited $rc (expected clean drain 0)" >&2
  cat svr_f1.serve.log >&2
  exit 1
}

# --- the periodic stats dump: shape + counter sanity ----------------------
python3 - <<'EOF'
import json, sys

def fail(msg):
    print("check_server_smoke: FAIL:", msg, file=sys.stderr)
    sys.exit(1)

try:
    d = json.load(open("svr_f1.stats.json"))
except Exception as e:  # noqa: BLE001 - any parse failure is the finding
    fail(f"stats dump unreadable: {e}")

srv = d.get("server")
if srv is None:
    fail("dump has no 'server' block")
for key in ("accepted", "refused", "closed", "idle_closed", "requests",
            "responded", "admitted", "rejected", "bad_lines", "drained"):
    if key not in srv:
        fail(f"server block missing '{key}'")
if srv["accepted"] < 2 or srv["requests"] < 4 or srv["admitted"] < 2:
    fail(f"implausible server counters: {srv}")
# bad_lines also counts oversized/overflow violations that never became
# complete request lines, so the reconciliation is an inequality.
if srv["admitted"] + srv["rejected"] > srv["requests"]:
    fail(f"admitted + rejected exceed requests: {srv}")
svc = d.get("service")
if not isinstance(svc, dict) or "svr_f1" not in svc:
    fail(f"dump has no per-graph service block: {list(d)}")
if svc["svr_f1"]["counters"]["completed"] < 2:
    fail(f"service completed fewer requests than the client saw")
print("check_server_smoke: OK (clean drain, stats dump reconciles)")
EOF
exit $?
