#!/bin/sh
# End-to-end smoke test of the frozen-snapshot pipeline, run by CI and
# the snapshot_smoke_check ctest entry:
#   1. write the Fig. 1 fixture and freeze it: `snapshot build`;
#   2. `snapshot info` must print the expected header fields and all 20
#      sections of the version-1 format (docs/SNAPSHOT_FORMAT.md);
#   3. the snapshot-backed and text-graph paths must agree byte-for-byte
#      on a query's answer listing (--snapshot equivalence);
#   4. start `whyq_cli serve` *from the snapshot image* and serve one
#      why request over the socket (requires python3; steps 1-3 run
#      regardless).
# Usage: check_snapshot_smoke.sh PATH_TO_WHYQ_CLI [WORKDIR]
set -u

cli="${1:?usage: check_snapshot_smoke.sh PATH_TO_WHYQ_CLI [WORKDIR]}"
cd "${2:-.}" || exit 1

fail() {
  echo "check_snapshot_smoke: FAIL: $1" >&2
  exit 1
}

ids=$("$cli" figure1 --out=snap_f1 | sed -n 's/^ids: //p')
[ -n "$ids" ] || fail "figure1 printed no ids"
# The line is "a5=N s5=N s8=N s9=N" — our own output, safe to eval.
eval "$ids"

# --- 1. freeze -------------------------------------------------------------
"$cli" snapshot build snap_f1.graph --out=snap_f1.whyqsnap ||
  fail "snapshot build failed"
[ -s snap_f1.whyqsnap ] || fail "snapshot build wrote nothing"

# --- 2. info ---------------------------------------------------------------
info=$("$cli" snapshot info snap_f1.whyqsnap) || fail "snapshot info failed"
echo "$info" | grep -q 'snapshot v1' || fail "info: missing version line"
for field in file_bytes node_count edge_count fingerprint payload_hash; do
  echo "$info" | grep -q "$field" || fail "info: missing field '$field'"
done
sections=$(echo "$info" | grep -c '^  [0-9]')
[ "$sections" -eq 20 ] ||
  fail "info: expected 20 sections, saw $sections"

# --- 3. text vs snapshot equivalence --------------------------------------
printf 'node x Cellphone\nnode b Brand name = s:Samsung\nedge x b brand\noutput x\n' \
  > snap_f1_smoke.query
"$cli" query snap_f1.graph snap_f1_smoke.query > snap_f1.text.out ||
  fail "query over the text graph failed"
"$cli" query snap_f1.whyqsnap snap_f1_smoke.query --snapshot \
  > snap_f1.snap.out || fail "query over the snapshot failed"
cmp -s snap_f1.text.out snap_f1.snap.out ||
  fail "snapshot-backed answers differ from the text-graph answers"
grep -q 'answers' snap_f1.text.out || fail "query printed no answer count"

# --- 4. serve one request from the image ----------------------------------
if ! command -v python3 >/dev/null 2>&1; then
  echo "check_snapshot_smoke: python3 not found, skipping serve step" >&2
  echo "check_snapshot_smoke: OK (build, info, equivalence)"
  exit 0
fi

rm -f snap_f1.serve.log
"$cli" serve snap_f1.whyqsnap --snapshot --workers=2 \
  > snap_f1.serve.log 2>&1 &
pid=$!

port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/^whyq_server listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
         snap_f1.serve.log)
  [ -n "$port" ] && break
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.05
done
[ -n "$port" ] || {
  echo "check_snapshot_smoke: no listening line; log:" >&2
  cat snap_f1.serve.log >&2
  kill "$pid" 2>/dev/null
  exit 1
}

QUERY=$(cat snap_f1.query) PORT="$port" A5="$a5" S5="$s5" python3 - <<'EOF'
import json, os, socket, sys

port = int(os.environ["PORT"])
query = os.environ["QUERY"]
a5, s5 = int(os.environ["A5"]), int(os.environ["S5"])

s = socket.create_connection(("127.0.0.1", port), timeout=20)
r = s.makefile("r", encoding="utf-8")
s.sendall((json.dumps({"id": 1, "question": "why", "query": query,
                       "entities": [a5, s5], "guard": 0}) + "\n").encode())
line = r.readline()
if not line:
    print("check_snapshot_smoke: FAIL: no response from snapshot-backed "
          "server", file=sys.stderr)
    sys.exit(1)
resp = json.loads(line)
if resp.get("status") != "ok" or not resp.get("answer", {}).get("found"):
    print(f"check_snapshot_smoke: FAIL: bad response {resp}",
          file=sys.stderr)
    sys.exit(1)
s.close()
EOF
rc=$?
kill "$pid" 2>/dev/null
wait "$pid" 2>/dev/null
[ "$rc" -eq 0 ] || exit 1

echo "check_snapshot_smoke: OK (build, info, equivalence, served 1 request)"
