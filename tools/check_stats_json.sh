#!/bin/sh
# End-to-end check of `serve-batch --stats-json`, run by CI and the
# stats_json_check ctest entry: drives the paper's Fig. 1 example through
# the service and validates the exported snapshot with python3 —
#   1. the file parses as JSON;
#   2. the counters reconcile: received == completed + bad_requests,
#      cache_hits + cache_misses == completed, histogram counts sum to
#      completed, per-class bucket counts sum to the class count;
#   3. percentiles are ordered (min <= p50 <= p95 <= p99 <= max);
#   4. per-stage time totals (queue+parse+prepare+search) sum to the
#      latency total within 5% (or a 0.5ms absolute epsilon for the
#      sub-millisecond latencies of the toy example).
# A second phase covers the daemon's periodic `serve --stats-json` dump:
# it must appear within a few periods even with no traffic, carry the
# server + per-graph service blocks, and — because the writer renames a
# temp file into place — every concurrent read must parse cleanly.
# A third phase drives a {"op":"update"} batch through the daemon and
# validates the update counters reconcile: graph_generation equals
# updates_applied (text-loaded graphs start at generation 0),
# cache_invalidated never exceeds cache_misses (only built entries can be
# dropped), and the server's `updates` counter matches.
# A fourth phase runs serve-batch against a persistent plan store, twice:
# every prepare attempt must probe the store (plan_store_hits +
# plan_store_misses == cache_misses in both runs), the cold run must
# persist without hitting (the memory cache absorbs repeats, so no probe
# can land on a plan the same run wrote moments earlier), and the
# restarted run (--cache=0: every request probes) must serve every
# request from the store.
# Usage: check_stats_json.sh PATH_TO_WHYQ_CLI [WORKDIR]
set -u

cli="${1:?usage: check_stats_json.sh PATH_TO_WHYQ_CLI [WORKDIR]}"
cd "${2:-.}" || exit 1

if ! command -v python3 >/dev/null 2>&1; then
  echo "check_stats_json: python3 not found, skipping" >&2
  exit 0
fi

ids=$("$cli" figure1 --out=sj_f1 | sed -n 's/^ids: //p')
[ -n "$ids" ] || { echo "check_stats_json: figure1 printed no ids" >&2; exit 1; }
# The line is "a5=N s5=N s8=N s9=N" — our own output, safe to eval.
eval "$ids"

cat > sj_f1.questions <<EOF
# Fig. 1 questions: Why {a5,s5}, Why-not {s8,s9}, plus the extensions.
why sj_f1.query $a5,$s5
whynot sj_f1.query $s8,$s9
whyempty sj_f1.query
whysomany sj_f1.query 1
why sj_f1.query $a5,$s5
whynot sj_f1.query $s8,$s9
EOF

"$cli" serve-batch sj_f1.graph sj_f1.questions --workers=2 \
  --slow-ms=0.001 --stats-json=sj_f1.stats.json > /dev/null ||
  { echo "check_stats_json: serve-batch failed" >&2; exit 1; }

python3 - <<'EOF'
import json, sys

d = json.load(open("sj_f1.stats.json"))
c = d["counters"]

def check(cond, msg):
    if not cond:
        print("check_stats_json: FAIL:", msg, file=sys.stderr)
        sys.exit(1)

check(c["received"] == c["completed"] + c["bad_requests"],
      f"received {c['received']} != completed {c['completed']} + bad {c['bad_requests']}")
check(c["cache_hits"] + c["cache_misses"] == c["completed"],
      f"hits {c['cache_hits']} + misses {c['cache_misses']} != completed {c['completed']}")
check(c["rejected"] == 0 and c["shutdown"] == 0,
      "unexpected rejected/shutdown on an uncontended batch")
check(c["completed"] == 6, f"expected 6 completed, got {c['completed']}")
# No updates ran in this batch: the epoch counters must sit at zero and
# still reconcile (generation == applied for text-loaded graphs).
for key in ("updates_applied", "graph_generation", "cache_invalidated",
            "cache_rekeyed", "plan_store_hits", "plan_store_misses",
            "plan_store_writes", "plan_store_evictions",
            "plan_store_invalid"):
    check(key in c, f"counters missing {key}")
# No plan store was configured: every store counter must sit at zero.
check(c["plan_store_hits"] + c["plan_store_misses"]
      + c["plan_store_writes"] == 0,
      "plan-store counters moved without a store configured")
check(c["graph_generation"] == c["updates_applied"],
      f"generation {c['graph_generation']} != applied {c['updates_applied']}")
check(c["cache_invalidated"] <= c["cache_misses"],
      f"invalidated {c['cache_invalidated']} > misses {c['cache_misses']}")

hist_total = 0
for klass, h in d["latency_ms"].items():
    hist_total += h["count"]
    check(h["min"] <= h["p50"] <= h["p95"] <= h["p99"] <= h["max"] + 1e-9,
          f"{klass}: percentiles out of order: {h}")
    check(sum(b[1] for b in h["buckets"]) == h["count"],
          f"{klass}: bucket counts do not sum to count")
check(hist_total == c["completed"],
      f"histogram counts {hist_total} != completed {c['completed']}")

w = d["work"]
for key in ("ctx_hits", "ctx_misses", "ctx_delta_builds", "ctx_pruned"):
    check(key in w, f"work totals missing {key}")
# Every cache-missing iso request builds at least one candidate set (the
# prepare stage seeds the output node's set as a miss).
check(w["ctx_misses"] >= 1, f"expected ctx_misses >= 1, got {w['ctx_misses']}")

st = d["stage_totals_ms"]
stages = st["queue"] + st["parse"] + st["prepare"] + st["search"]
check(abs(stages - st["latency"]) <= max(0.05 * st["latency"], 0.5),
      f"stage sum {stages} vs latency {st['latency']} beyond tolerance")
check(st["candidates"] + st["answer_match"] + st["path_index"]
      <= st["prepare"] + 0.5, "prepare sub-stages exceed prepare total")

slow = d["slow_queries"]
check(slow["threshold_ms"] > 0, "slow-query threshold missing")
check(len(slow["entries"]) >= 1, "no slow-query entries retained")
for e in slow["entries"]:
    check(e["latency_ms"] >= slow["threshold_ms"],
          f"slow entry below threshold: {e}")

print("check_stats_json: OK (counters reconcile, percentiles ordered, "
      f"stage sum {stages:.3f}ms ~ latency {st['latency']:.3f}ms)")
EOF
[ $? -eq 0 ] || exit 1

# --- phase 2: the daemon's periodic dump --------------------------------
rm -f sj_f1.daemon.json sj_f1.daemon.log
"$cli" serve sj_f1.graph --workers=1 --stats-json=sj_f1.daemon.json \
  --stats-period-ms=50 > sj_f1.daemon.log 2>&1 &
pid=$!

# The first dump must land within a few periods, with no client traffic.
found=""
for _ in $(seq 1 100); do
  [ -f sj_f1.daemon.json ] && { found=1; break; }
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.05
done
[ -n "$found" ] || {
  echo "check_stats_json: daemon wrote no periodic dump; log:" >&2
  cat sj_f1.daemon.log >&2
  kill "$pid" 2>/dev/null
  exit 1
}

# Atomic rename: reads racing the periodic writer must never observe a
# torn file. Sample it repeatedly across several write periods.
python3 - <<'EOF'
import json, sys, time

for attempt in range(20):
    try:
        d = json.load(open("sj_f1.daemon.json"))
    except Exception as e:  # noqa: BLE001 - a torn read is the finding
        print(f"check_stats_json: FAIL: torn/unparsable daemon dump on "
              f"read {attempt}: {e}", file=sys.stderr)
        sys.exit(1)
    time.sleep(0.02)

srv = d.get("server", {})
for key in ("accepted", "refused", "closed", "idle_closed", "requests",
            "responded", "admitted", "rejected", "bad_lines", "updates",
            "drained"):
    if key not in srv:
        print(f"check_stats_json: FAIL: daemon dump server block missing "
              f"'{key}'", file=sys.stderr)
        sys.exit(1)
svc = d.get("service", {})
if "sj_f1" not in svc or "counters" not in svc["sj_f1"]:
    print("check_stats_json: FAIL: daemon dump has no per-graph service "
          f"block: {sorted(d)}", file=sys.stderr)
    sys.exit(1)
print("check_stats_json: OK (daemon dump present, atomic, well-formed)")
EOF
rc=$?
if [ "$rc" -ne 0 ]; then
  kill -TERM "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null
  exit 1
fi

# --- phase 3: updates over the wire reconcile in the dump ----------------
python3 - "$a5" "$s5" <<'EOF'
import json, re, socket, sys, time

a5, s5 = int(sys.argv[1]), int(sys.argv[2])
log = open("sj_f1.daemon.log").read()
m = re.search(r"listening on 127\.0\.0\.1:(\d+)", log)
if not m:
    print("check_stats_json: FAIL: no listening line in daemon log",
          file=sys.stderr)
    sys.exit(1)

def fail(msg):
    print("check_stats_json: FAIL:", msg, file=sys.stderr)
    sys.exit(1)

s = socket.create_connection(("127.0.0.1", int(m.group(1))), timeout=10)
f = s.makefile("rw")

def ask(req):
    f.write(json.dumps(req) + "\n")
    f.flush()
    return json.loads(f.readline())

# Populate the prepared-query cache, then mutate the graph.
query = open("sj_f1.query").read()
r = ask({"id": 1, "question": "why", "query": query,
         "entities": [a5, s5], "guard": 0})
if r.get("status") != "ok":
    fail(f"why over the wire failed: {r}")
r = ask({"id": 2, "op": "update", "graph": "sj_f1", "ops": ["AN Paper"]})
if r.get("status") != "ok" or r.get("generation") != 1:
    fail(f"update not applied: {r}")
if r.get("applied", {}).get("nodes_added") != 1:
    fail(f"wrong applied delta: {r}")
# A batch that fails validation changes nothing and reports its type.
r = ask({"id": 3, "op": "update", "ops": ["DN 999999"]})
if r.get("status") != "bad_request" or r.get("update_status") != "no-such-node":
    fail(f"invalid update not rejected cleanly: {r}")

# The next periodic dump must reconcile the new counters.
deadline = time.time() + 10
while True:
    d = json.load(open("sj_f1.daemon.json"))
    srv = d.get("server", {})
    c = d.get("service", {}).get("sj_f1", {}).get("counters", {})
    if srv.get("updates") == 1 and c.get("updates_applied") == 1:
        break
    if time.time() > deadline:
        fail(f"dump never reflected the update: server={srv} counters={c}")
    time.sleep(0.05)
if c["graph_generation"] != c["updates_applied"]:
    fail(f"generation {c['graph_generation']} != applied "
         f"{c['updates_applied']}")
if c["cache_invalidated"] > c["cache_misses"]:
    fail(f"invalidated {c['cache_invalidated']} > misses "
         f"{c['cache_misses']}")
if c["cache_invalidated"] + c["cache_rekeyed"] == 0:
    fail("update ran against a populated cache but touched no entry")
print("check_stats_json: OK (wire update applied; epoch counters "
      "reconcile: generation == applied, invalidated <= misses)")
EOF
rc=$?
kill -TERM "$pid" 2>/dev/null
wait "$pid" 2>/dev/null
[ "$rc" -eq 0 ] || exit 1

# --- phase 4: plan-store counters reconcile on a live run ----------------
rm -rf sj_f1.plans
# Cold run: default memory cache. Repeated questions hit the cache and
# never probe the store, so plan_store_hits == 0 deterministically —
# with --cache=0 here, a repeat could legitimately hit a plan the
# background writer flushed earlier in the same run.
"$cli" serve-batch sj_f1.graph sj_f1.questions --workers=2 \
  --plan-store=sj_f1.plans --stats-json=sj_f1.plan1.json > /dev/null ||
  { echo "check_stats_json: serve-batch (cold plan store) failed" >&2
    exit 1; }
# Restarted run: --cache=0 so every request is a prepare attempt that
# probes the now-warm store.
"$cli" serve-batch sj_f1.graph sj_f1.questions --workers=2 --cache=0 \
  --plan-store=sj_f1.plans --stats-json=sj_f1.plan2.json > /dev/null ||
  { echo "check_stats_json: serve-batch (warm plan store) failed" >&2
    exit 1; }

python3 - <<'EOF'
import json, sys

def check(cond, msg):
    if not cond:
        print("check_stats_json: FAIL:", msg, file=sys.stderr)
        sys.exit(1)

r1 = json.load(open("sj_f1.plan1.json"))["counters"]
r2 = json.load(open("sj_f1.plan2.json"))["counters"]
# Every prepare attempt (== cache miss) probes the store exactly once,
# hit or miss.
for name, c in (("cold", r1), ("warm", r2)):
    check(c["plan_store_hits"] + c["plan_store_misses"]
          == c["cache_misses"],
          f"{name} run: store hits {c['plan_store_hits']} + misses "
          f"{c['plan_store_misses']} != prepare attempts "
          f"{c['cache_misses']}")
check(r1["plan_store_hits"] == 0,
      f"cold run hit an empty store: {r1['plan_store_hits']}")
check(r1["plan_store_writes"] >= 1,
      f"cold run persisted nothing: writes={r1['plan_store_writes']}")
check(r2["plan_store_hits"] >= 1,
      f"restarted run never hit the store: {r2['plan_store_hits']}")
check(r2["plan_store_misses"] == 0,
      f"restarted run missed a warm store: {r2['plan_store_misses']}")
check(r2["plan_store_invalid"] == 0,
      f"restarted run rejected plans: {r2['plan_store_invalid']}")
print("check_stats_json: OK (plan-store probes reconcile: "
      f"cold misses={r1['plan_store_misses']} writes="
      f"{r1['plan_store_writes']}; warm hits={r2['plan_store_hits']})")
EOF
[ $? -eq 0 ] || exit 1
exit 0
