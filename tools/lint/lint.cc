#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace whyq::lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

int LineOfOffset(const std::string& text, size_t offset) {
  int line = 1;
  for (size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

/// Whole-token search: `token` at `pos` with non-identifier neighbors.
bool TokenAt(const std::string& text, size_t pos, const std::string& token) {
  if (pos + token.size() > text.size()) return false;
  if (text.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  size_t end = pos + token.size();
  if (end < text.size() && IsIdentChar(text[end])) return false;
  return true;
}

size_t FindToken(const std::string& text, const std::string& token,
                 size_t from = 0) {
  for (size_t pos = text.find(token, from); pos != std::string::npos;
       pos = text.find(token, pos + 1)) {
    if (TokenAt(text, pos, token)) return pos;
  }
  return std::string::npos;
}

bool ContainsToken(const std::string& text, const std::string& token) {
  return FindToken(text, token) != std::string::npos;
}

/// Matching close brace/paren for the opener at `open` (which must point
/// at one). Returns npos when unbalanced. Operates on stripped text, so
/// braces inside literals cannot confuse it.
size_t MatchDelim(const std::string& text, size_t open, char o, char c) {
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == o) ++depth;
    if (text[i] == c && --depth == 0) return i;
  }
  return std::string::npos;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// A `'` directly after a (hex) digit is a C++14 digit separator
/// (1'048'576, 0xFF'FF), not the start of a char literal. Wide-literal
/// prefixes (L/u/U/u8) are not hex-digit letters, so they still open one.
bool IsDigitSeparatorContext(char prev) {
  return (prev >= '0' && prev <= '9') || (prev >= 'a' && prev <= 'f') ||
         (prev >= 'A' && prev <= 'F');
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Length of a raw-string opener starting at `i` — `R"`, or `R"` behind an
/// encoding prefix (`u8R"`, `uR"`, `UR"`, `LR"`) — through the opening
/// quote. 0 when `i` does not start one (including when the would-be
/// prefix is the tail of a longer identifier, e.g. `FooR"`).
size_t RawOpenerLen(const std::string& src, size_t i) {
  if (i > 0 && IsIdentChar(src[i - 1])) return 0;
  size_t r = i;
  if (src.compare(i, 2, "u8") == 0) {
    r = i + 2;
  } else if (src[i] == 'u' || src[i] == 'U' || src[i] == 'L') {
    r = i + 1;
  }
  if (r + 1 >= src.size() || src[r] != 'R' || src[r + 1] != '"') return 0;
  return r + 2 - i;
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& src) {
  std::string out = src;
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;  // the )delim" terminator of a raw string
  for (size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (size_t raw = RawOpenerLen(src, i); raw > 0) {
          // [u8|u|U|L]R"delim( ... )delim"
          size_t open = src.find('(', i + raw);
          if (open == std::string::npos) break;
          raw_delim = ")" + src.substr(i + raw, open - i - raw) + "\"";
          state = State::kRaw;
          // Keep the first prefix char readable; blank from there on —
          // kRaw also blanks the closing )delim", whose delimiter may
          // contain digits/identifier chars that must not leak as code.
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' &&
                   (i == 0 || !IsDigitSeparatorContext(src[i - 1]))) {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kRaw:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 0; k < raw_delim.size(); ++k) {
            if (out[i + k] != '\n') out[i + k] = ' ';
          }
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// Rule: cancel-poll
// ---------------------------------------------------------------------------

// A loop is a "hot loop" when its condition or body invokes one of these
// (enumeration, exact verification, greedy scoring — the operations a
// deadline must be able to interrupt mid-flight).
const char* const kWorkTokens[] = {
    "Evaluate",
    "EnumerateMaximalBoundedSets",
    "EnumerateMaximalBoundedSetsBatched",
    "MatchOutput",
    "TestAnswers",
    "NewMatches",
    "AffectedAnswers",
    "SearchFrom",
    "estimate",
};

// Evidence of a cooperative cancellation poll (or of delegating the poll
// to the enumerator via its should_stop hook).
const char* const kPollTokens[] = {
    "CancelRequested", "Expired", "CancelledNow", "cancel_hit_",
    "should_stop",
};

void CheckCancelPolling(const std::string& path, const std::string& stripped,
                        std::vector<Violation>* out) {
  static const std::string kLoopKeywords[] = {"while", "for"};
  for (const std::string& kw : kLoopKeywords) {
    for (size_t pos = FindToken(stripped, kw); pos != std::string::npos;
         pos = FindToken(stripped, kw, pos + 1)) {
      // `do { } while (cond);` — the trailing while has no body; the
      // condition alone cannot contain a hot call chain we track.
      size_t open = stripped.find_first_not_of(" \t\n", pos + kw.size());
      if (open == std::string::npos || stripped[open] != '(') continue;
      size_t close = MatchDelim(stripped, open, '(', ')');
      if (close == std::string::npos) continue;
      size_t body_begin = stripped.find_first_not_of(" \t\n", close + 1);
      if (body_begin == std::string::npos) continue;
      size_t body_end;
      if (stripped[body_begin] == '{') {
        body_end = MatchDelim(stripped, body_begin, '{', '}');
        if (body_end == std::string::npos) continue;
      } else {
        body_end = stripped.find(';', body_begin);
        if (body_end == std::string::npos) continue;
      }
      std::string loop_text =
          stripped.substr(open, body_end + 1 - open);
      bool works = false;
      for (const char* t : kWorkTokens) {
        if (ContainsToken(loop_text, t)) {
          works = true;
          break;
        }
      }
      if (!works) continue;
      bool polls = false;
      for (const char* t : kPollTokens) {
        if (ContainsToken(loop_text, t)) {
          polls = true;
          break;
        }
      }
      if (!polls) {
        out->push_back({path, LineOfOffset(stripped, pos), "cancel-poll",
                        "loop performs enumeration/verification work but "
                        "never polls the CancelToken (CancelRequested/"
                        "Expired) — deadlines cannot truncate it"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: determinism
// ---------------------------------------------------------------------------

void CheckDeterminism(const std::string& path, const std::string& stripped,
                      std::vector<Violation>* out) {
  static const char* const kBanned[] = {"rand", "srand", "random_device",
                                        "rand_r", "drand48"};
  for (const char* t : kBanned) {
    for (size_t pos = FindToken(stripped, t); pos != std::string::npos;
         pos = FindToken(stripped, t, pos + 1)) {
      out->push_back({path, LineOfOffset(stripped, pos), "determinism",
                      std::string(t) +
                          " is nondeterministic; route randomness through "
                          "the seeded whyq::Rng (src/common/rng.h)"});
    }
  }
  // time(nullptr) / time(NULL) seeds.
  for (size_t pos = FindToken(stripped, "time"); pos != std::string::npos;
       pos = FindToken(stripped, "time", pos + 1)) {
    size_t open = stripped.find_first_not_of(" \t\n", pos + 4);
    if (open == std::string::npos || stripped[open] != '(') continue;
    size_t close = MatchDelim(stripped, open, '(', ')');
    if (close == std::string::npos) continue;
    std::string arg = stripped.substr(open + 1, close - open - 1);
    arg.erase(std::remove_if(arg.begin(), arg.end(),
                             [](char c) { return c == ' ' || c == '\t'; }),
              arg.end());
    if (arg == "nullptr" || arg == "NULL" || arg == "0") {
      out->push_back({path, LineOfOffset(stripped, pos), "determinism",
                      "time(" + arg +
                          ") wall-clock seed; use a fixed or configured "
                          "seed via whyq::Rng"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: output-channel
// ---------------------------------------------------------------------------

void CheckOutputChannel(const std::string& path, const std::string& stripped,
                        std::vector<Violation>* out) {
  static const char* const kBanned[] = {"cout", "cerr",  "clog",    "printf",
                                        "fprintf", "puts", "fputs", "putchar"};
  for (const char* t : kBanned) {
    for (size_t pos = FindToken(stripped, t); pos != std::string::npos;
         pos = FindToken(stripped, t, pos + 1)) {
      out->push_back({path, LineOfOffset(stripped, pos), "output-channel",
                      std::string(t) +
                          " in library code; metrics/RequestTrace (and "
                          "returned strings) are the only output channels "
                          "under src/"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rules: server-limits, snapshot-limits (shared decimal-literal scanner)
// ---------------------------------------------------------------------------

/// Decimal integer literals at or above this value are presumed to be
/// resource limits (buffer sizes, caps, timeouts) or format constants
/// that belong in the layer's pigeonhole header. Below it sit loop
/// bounds, small field counts and arithmetic constants that are not
/// limits. Hex/binary/octal-prefixed literals are exempt: they are bit
/// masks and encoding thresholds (UTF-8 boundaries, epoll flags), not
/// capacity knobs.
constexpr unsigned long long kLimitLiteralThreshold = 64;

/// Flags every decimal integer literal >= kLimitLiteralThreshold under
/// `rule`; `where` completes the message ("integer literal N <where>").
void CheckLimitLiterals(const std::string& path, const std::string& stripped,
                        const char* rule, const std::string& where,
                        std::vector<Violation>* out) {
  auto digit = [](char c) {
    return std::isdigit(static_cast<unsigned char>(c)) != 0;
  };
  for (size_t i = 0; i < stripped.size();) {
    if (!digit(stripped[i]) ||
        (i > 0 && (IsIdentChar(stripped[i - 1]) || stripped[i - 1] == '.'))) {
      ++i;
      continue;
    }
    size_t j = i;
    if (stripped[i] == '0' && j + 1 < stripped.size() &&
        (stripped[j + 1] == 'x' || stripped[j + 1] == 'X' ||
         stripped[j + 1] == 'b' || stripped[j + 1] == 'B')) {
      // Prefixed literal: skip the whole token.
      j += 2;
      while (j < stripped.size() &&
             (IsIdentChar(stripped[j]) || stripped[j] == '\'')) {
        ++j;
      }
      i = j;
      continue;
    }
    std::string digits;
    while (j < stripped.size() && (digit(stripped[j]) || stripped[j] == '\'')) {
      if (stripped[j] != '\'') digits += stripped[j];
      ++j;
    }
    if (j < stripped.size() &&
        (stripped[j] == '.' || stripped[j] == 'e' || stripped[j] == 'E')) {
      // Floating literal: consume its tail and move on (doubles carrying
      // limit semantics still live in limits.h by convention, but flagging
      // every 0.5 scale factor would drown the rule in noise).
      while (j < stripped.size() &&
             (digit(stripped[j]) || stripped[j] == '.' ||
              stripped[j] == 'e' || stripped[j] == 'E' ||
              stripped[j] == '+' || stripped[j] == '-' ||
              IsIdentChar(stripped[j]))) {
        ++j;
      }
      i = j;
      continue;
    }
    unsigned long long value = std::strtoull(digits.c_str(), nullptr, 10);
    size_t literal_at = i;
    // Integer suffixes (u/l/z combinations).
    while (j < stripped.size() && IsIdentChar(stripped[j])) ++j;
    i = j;
    if (value >= kLimitLiteralThreshold) {
      out->push_back({path, LineOfOffset(stripped, literal_at), rule,
                      "integer literal " + digits + " " + where});
    }
  }
}

const char kServerLimitsWhere[] =
    "in src/server/ outside limits.h — every hard limit of the daemon "
    "lives in src/server/limits.h with a provenance comment (hex "
    "bit-mask literals are exempt)";

const char kSnapshotLimitsWhere[] =
    "in the snapshot layer outside snapshot.h — every constant of the "
    "on-disk format (alignment, section count, hash parameters) lives "
    "in src/graph/snapshot.h, the header docs/SNAPSHOT_FORMAT.md is "
    "checked against (hex bit-mask literals are exempt)";

const char kPlanLimitsWhere[] =
    "in the plan layer outside plan.h — every constant of the on-disk "
    "compiled-plan format (alignment, section count, size caps, store "
    "budget) lives in src/service/plan.h, the header docs/PLAN_FORMAT.md "
    "is checked against (hex bit-mask literals are exempt)";

// ---------------------------------------------------------------------------
// Rule: graph-mutation
// ---------------------------------------------------------------------------

// The Graph's derived-storage columns: label buckets, label-partitioned
// adjacency runs, attribute indexes, and the raw edge pools they are built
// from. They are private and only reachable from the graph core's friends,
// but a friend declaration is one line — this rule makes the boundary
// auditable: any *textual* reference to these members outside the graph
// core (builder, updater, snapshot codec) is flagged, so every structure
// write provably flows through GraphBuilder::Build or Graph::ApplyUpdate
// and the incremental-vs-rebuild equivalence tests cover it.
const char* const kGraphStorageMembers[] = {
    "node_label_",      "attr_range_",    "attr_pool_",
    "attr_ranges_",     "out_pool_",      "in_pool_",
    "out_range_",       "in_range_",      "out_nbrs_",
    "in_nbrs_",         "out_slices_",    "in_slices_",
    "out_slice_range_", "in_slice_range_", "bucket_nodes_",
    "bucket_range_",
};

void CheckGraphMutation(const std::string& path, const std::string& stripped,
                        std::vector<Violation>* out) {
  for (const char* t : kGraphStorageMembers) {
    for (size_t pos = FindToken(stripped, t); pos != std::string::npos;
         pos = FindToken(stripped, t, pos + 1)) {
      out->push_back(
          {path, LineOfOffset(stripped, pos), "graph-mutation",
           std::string(t) +
               " referenced outside the graph core — label buckets, "
               "adjacency runs and attribute indexes are maintained only "
               "by GraphBuilder (src/graph/graph.cc), GraphUpdater "
               "(src/graph/update.cc) and the snapshot codec; mutate live "
               "graphs through Graph::ApplyUpdate"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: nodespan-member
// ---------------------------------------------------------------------------

void CheckNodeSpanMembers(const std::string& path,
                          const std::string& stripped,
                          std::vector<Violation>* out) {
  if (!ContainsToken(stripped, "NodeSpan")) return;
  // Brace-scope walk classifying each `{` as record (class/struct body) or
  // other. A declaration statement directly inside a record scope that
  // names NodeSpan without a parameter list is a stored borrowed span.
  std::vector<bool> record_stack;
  size_t stmt_begin = 0;
  auto check_stmt = [&](size_t begin, size_t end) {
    if (record_stack.empty() || !record_stack.back()) return;
    std::string stmt = stripped.substr(begin, end - begin);
    if (stmt.find('(') != std::string::npos) return;  // function decl
    if (!ContainsToken(stmt, "NodeSpan")) return;
    if (ContainsToken(stmt, "using") || ContainsToken(stmt, "typedef") ||
        ContainsToken(stmt, "friend")) {
      return;
    }
    out->push_back(
        {path, LineOfOffset(stripped, begin + stmt.find("NodeSpan")),
         "nodespan-member",
         "NodeSpan stored as a class member outside src/graph/ — spans "
         "borrow Graph storage and must not outlive a statement scope; "
         "store NodeId ranges or re-fetch the span instead"});
  };
  for (size_t i = 0; i < stripped.size(); ++i) {
    char c = stripped[i];
    if (c == '{') {
      // Classify by the statement head accumulated since the last
      // boundary: a class/struct keyword with no parameter list.
      std::string head = stripped.substr(stmt_begin, i - stmt_begin);
      bool is_record = head.find('(') == std::string::npos &&
                       head.find('=') == std::string::npos &&
                       (ContainsToken(head, "class") ||
                        ContainsToken(head, "struct"));
      check_stmt(stmt_begin, i);  // brace-initialized member
      record_stack.push_back(is_record);
      stmt_begin = i + 1;
    } else if (c == '}') {
      if (!record_stack.empty()) record_stack.pop_back();
      stmt_begin = i + 1;
    } else if (c == ';') {
      check_stmt(stmt_begin, i);
      stmt_begin = i + 1;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: header-guard
// ---------------------------------------------------------------------------

std::string ExpectedGuard(const std::string& path) {
  // src/common/cancel.h        -> WHYQ_COMMON_CANCEL_H_
  // tools/lint/lint.h          -> WHYQ_TOOLS_LINT_LINT_H_
  std::string rel = path;
  if (StartsWith(rel, "src/")) rel = rel.substr(4);
  std::string guard = "WHYQ_";
  for (char c : rel) {
    guard += IsIdentChar(c)
                 ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += "_";
  return guard;
}

void CheckHeaderGuard(const std::string& path, const std::string& stripped,
                      std::vector<Violation>* out) {
  std::string expected = ExpectedGuard(path);
  std::istringstream lines(stripped);
  std::string line;
  std::string ifndef_name;
  std::string define_name;
  bool has_endif = false;
  int lineno = 0;
  int ifndef_line = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    std::istringstream toks(line);
    std::string a;
    toks >> a;
    if (a.empty()) continue;
    if (ifndef_name.empty()) {
      if (a == "#ifndef") {
        toks >> ifndef_name;
        ifndef_line = lineno;
        continue;
      }
      // Leading directives before the guard are skipped here; a header
      // with no #ifndef at all is still reported below.
      if (a[0] == '#') continue;
      out->push_back({path, lineno, "header-guard",
                      "header does not start with its include guard "
                      "(#ifndef " +
                          expected + ")"});
      return;
    }
    if (define_name.empty()) {
      if (a == "#define") {
        toks >> define_name;
        continue;
      }
      out->push_back({path, lineno, "header-guard",
                      "#ifndef " + ifndef_name +
                          " must be followed immediately by #define " +
                          ifndef_name});
      return;
    }
    if (a == "#endif") has_endif = true;
  }
  if (ifndef_name.empty()) {
    out->push_back({path, 1, "header-guard",
                    "missing include guard #ifndef " + expected});
    return;
  }
  if (ifndef_name != expected) {
    out->push_back({path, ifndef_line, "header-guard",
                    "guard " + ifndef_name + " does not match canonical " +
                        expected});
  } else if (define_name != ifndef_name) {
    out->push_back({path, ifndef_line, "header-guard",
                    "#define " + define_name + " does not match #ifndef " +
                        ifndef_name});
  } else if (!has_endif) {
    out->push_back(
        {path, ifndef_line, "header-guard", "guard is never closed (#endif)"});
  }
}

// ---------------------------------------------------------------------------
// v2 per-TU model: function extents, loop regions, statement structure
// ---------------------------------------------------------------------------

// Drops preprocessor lines from a statement head: a head accumulated since
// the last `;`/`{`/`}` boundary may span #include/#define runs (file tops,
// guarded sections) that would otherwise confuse classification.
std::string DropPreprocessorLines(const std::string& head) {
  std::string out;
  size_t pos = 0;
  while (pos < head.size()) {
    size_t eol = head.find('\n', pos);
    size_t len = eol == std::string::npos ? head.size() - pos : eol - pos + 1;
    std::string line = head.substr(pos, len);
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] != '#') out += line;
    pos += len;
  }
  return out;
}

/// Classifies a brace-opening statement head. Returns the unqualified
/// function name when the head is a function definition (the identifier
/// immediately before its first `(`), empty otherwise — records,
/// namespaces, enums, brace initializers, and control statements all get
/// empty, which tells the extent walk to descend instead of skipping.
std::string FunctionNameOfHead(const std::string& raw_head) {
  std::string head = DropPreprocessorLines(raw_head);
  // A leading template intro (`template <...>`) may itself contain the
  // `class` keyword; peel it before classifying.
  size_t t = FindToken(head, "template");
  if (t != std::string::npos) {
    size_t lt = head.find('<', t);
    if (lt != std::string::npos) {
      size_t gt = MatchDelim(head, lt, '<', '>');
      if (gt != std::string::npos) head = head.substr(gt + 1);
    }
  }
  // First token decides record/namespace heads — `class WHYQ_CAPABILITY(..)
  // Mutex {` carries a parameter-looking macro, so the paren test alone
  // would misread it as a function.
  size_t fb = head.find_first_not_of(" \t\n");
  if (fb != std::string::npos && IsIdentChar(head[fb]) &&
      !(head[fb] >= '0' && head[fb] <= '9')) {
    size_t fe = fb;
    while (fe < head.size() && IsIdentChar(head[fe])) ++fe;
    std::string first = head.substr(fb, fe - fb);
    for (const char* kw : {"class", "struct", "union", "enum", "namespace"}) {
      if (first == kw) return "";
    }
  }
  size_t paren = head.find('(');
  if (paren == std::string::npos || paren == 0) return "";
  size_t end = head.find_last_not_of(" \t\n", paren - 1);
  if (end == std::string::npos || !IsIdentChar(head[end])) return "";
  size_t begin = end;
  while (begin > 0 && IsIdentChar(head[begin - 1])) --begin;
  std::string name = head.substr(begin, end - begin + 1);
  if (name[0] >= '0' && name[0] <= '9') return "";
  for (const char* kw : {"if", "for", "while", "switch", "catch", "return",
                         "do", "else", "new", "delete", "sizeof", "alignof",
                         "decltype", "defined"}) {
    if (name == kw) return "";
  }
  return name;
}

/// Loop regions (for/while/do bodies) inside [begin, end) of `s`, with
/// nesting depth (1 = outermost loop of the function).
void FindLoops(const std::string& s, size_t begin, size_t end,
               std::vector<LoopRegion>* out) {
  for (const char* kw : {"for", "while"}) {
    for (size_t k = FindToken(s, kw, begin);
         k != std::string::npos && k < end; k = FindToken(s, kw, k + 1)) {
      size_t paren = s.find_first_not_of(" \t\n", k + std::strlen(kw));
      if (paren == std::string::npos || paren >= end || s[paren] != '(') {
        continue;
      }
      size_t close = MatchDelim(s, paren, '(', ')');
      if (close == std::string::npos || close >= end) continue;
      size_t body = s.find_first_not_of(" \t\n", close + 1);
      if (body == std::string::npos || body >= end) continue;
      if (s[body] == '{') {
        size_t bclose = MatchDelim(s, body, '{', '}');
        if (bclose == std::string::npos || bclose > end) continue;
        out->push_back({body + 1, bclose, 0});
      } else if (s[body] == ';') {
        continue;  // the `while (...)` terminator of a do-while
      } else {
        size_t semi = s.find(';', body);
        if (semi == std::string::npos || semi > end) continue;
        out->push_back({body, semi, 0});
      }
    }
  }
  for (size_t k = FindToken(s, "do", begin);
       k != std::string::npos && k < end; k = FindToken(s, "do", k + 1)) {
    size_t body = s.find_first_not_of(" \t\n", k + 2);
    if (body == std::string::npos || body >= end || s[body] != '{') continue;
    size_t bclose = MatchDelim(s, body, '{', '}');
    if (bclose == std::string::npos || bclose > end) continue;
    out->push_back({body + 1, bclose, 0});
  }
  for (LoopRegion& l : *out) {
    l.depth = 1;
    for (const LoopRegion& other : *out) {
      if (other.body_begin < l.body_begin && l.body_end < other.body_end) {
        ++l.depth;
      }
    }
  }
  std::sort(out->begin(), out->end(),
            [](const LoopRegion& a, const LoopRegion& b) {
              return a.body_begin < b.body_begin;
            });
}

std::vector<FunctionExtent> ExtractFunctions(const std::string& stripped) {
  std::vector<FunctionExtent> fns;
  size_t stmt_begin = 0;
  for (size_t i = 0; i < stripped.size(); ++i) {
    char c = stripped[i];
    if (c == ';' || c == '}') {
      stmt_begin = i + 1;
      continue;
    }
    if (c != '{') continue;
    std::string head = stripped.substr(stmt_begin, i - stmt_begin);
    std::string name = FunctionNameOfHead(head);
    if (name.empty()) {
      // Record/namespace/initializer: descend and keep classifying.
      stmt_begin = i + 1;
      continue;
    }
    size_t close = MatchDelim(stripped, i, '{', '}');
    if (close == std::string::npos) break;
    FunctionExtent fn;
    fn.name = std::move(name);
    fn.body_begin = i;
    fn.body_end = close;
    FindLoops(stripped, i + 1, close, &fn.loops);
    fns.push_back(std::move(fn));
    i = close;  // a nested lambda/local struct is part of this extent
    stmt_begin = close + 1;
  }
  return fns;
}

/// Invokes `fn(stmt_begin, stmt_end)` for every statement inside the
/// function body [body_begin+1, body_end), split at `;`, `{`, and `}` —
/// the same boundaries the extent walk uses, so block heads (if/for/...)
/// are themselves statements.
template <typename Fn>
void ForEachStatement(const std::string& s, const FunctionExtent& f, Fn fn) {
  size_t stmt_begin = f.body_begin + 1;
  for (size_t i = f.body_begin + 1; i < f.body_end; ++i) {
    char c = s[i];
    if (c == ';' || c == '{' || c == '}') {
      // Trim leading whitespace so reported offsets (and their lines)
      // land on the statement's first token, not the prior boundary.
      size_t first = s.find_first_not_of(" \t\n", stmt_begin);
      if (first != std::string::npos && first < i) fn(first, i);
      stmt_begin = i + 1;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: epoch-pin
// ---------------------------------------------------------------------------

// Graph accessors whose results borrow epoch-owned storage.
const char* const kBorrowCalls[] = {
    "LabeledOutNeighbors",
    "LabeledInNeighbors",
    "NodesWithLabel",
    "LabeledSlice",
};

// Borrowed view types; a static local of one of these outlives every epoch.
const char* const kBorrowTypes[] = {"NodeSpan", "Column"};

/// Offset of the first top-level assignment `=` in [begin, end) of `s` —
/// skipping `==`, `!=`, `<=`, `>=` and compound assignments — or npos.
size_t FindAssignEq(const std::string& s, size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    if (s[i] != '=') continue;
    char prev = i > 0 ? s[i - 1] : '\0';
    char next = i + 1 < end ? s[i + 1] : '\0';
    if (next == '=') {
      ++i;  // ==
      continue;
    }
    if (prev == '=' || prev == '!' || prev == '<' || prev == '>' ||
        prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
        prev == '%' || prev == '&' || prev == '|' || prev == '^') {
      continue;
    }
    return i;
  }
  return std::string::npos;
}

void CheckEpochPin(const std::string& path, const TuModel& model,
                   std::vector<Violation>* out) {
  const std::string& s = model.stripped;
  // A TU whose class keeps the graph alive via a shared_ptr pin may also
  // cache borrowed views next to it — the pin holds the epoch. The repo
  // spells the pin exactly one way (clang-format), so a substring test is
  // exact here.
  bool has_pin = s.find("shared_ptr<const Graph>") != std::string::npos;
  for (const FunctionExtent& fn : model.functions) {
    ForEachStatement(s, fn, [&](size_t begin, size_t end) {
      std::string stmt = s.substr(begin, end - begin);
      bool borrows = false;
      std::string borrow_tok;
      for (const char* t : kBorrowCalls) {
        if (ContainsToken(stmt, t)) {
          borrows = true;
          borrow_tok = t;
          break;
        }
      }
      bool borrow_typed = false;
      for (const char* t : kBorrowTypes) {
        if (ContainsToken(stmt, t)) borrow_typed = true;
      }
      if (ContainsToken(stmt, "static") && (borrows || borrow_typed)) {
        out->push_back(
            {path, LineOfOffset(s, begin), "epoch-pin",
             "static local keeps a borrowed graph view across calls: spans "
             "and columns borrow one epoch's storage, and an update retires "
             "it — re-fetch from the pinned graph instead"});
        return;
      }
      if (!borrows) return;
      size_t eq = FindAssignEq(stmt, 0, stmt.size());
      if (eq == std::string::npos) return;
      if (stmt.find(borrow_tok) < eq) return;  // borrow on the LHS? not ours
      size_t tend = stmt.find_last_not_of(" \t\n", eq - 1);
      if (tend == std::string::npos || !IsIdentChar(stmt[tend])) return;
      size_t tbegin = tend;
      while (tbegin > 0 && IsIdentChar(stmt[tbegin - 1])) --tbegin;
      std::string target = stmt.substr(tbegin, tend - tbegin + 1);
      bool member_store =
          target.back() == '_' ||
          (tbegin >= 6 && stmt.compare(tbegin - 6, 6, "this->") == 0);
      if (member_store && !has_pin) {
        out->push_back(
            {path, LineOfOffset(s, begin), "epoch-pin",
             "storing the result of " + borrow_tok + " into member '" +
                 target +
                 "' without a shared_ptr<const Graph> pin in this TU: the "
                 "borrow dies with its epoch — hold the graph alongside the "
                 "view or re-fetch it per call"});
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Rule: unchecked-status
// ---------------------------------------------------------------------------

// Functions whose return value is a verdict the caller must consume.
const char* const kStatusCalls[] = {
    "TrySubmit",         // SubmitResult: dropping it loses the rejection
    "ApplyUpdate",       // bool: a failed batch left the graph unchanged
    "ApplyUpdateByRebuild",
    "LoadPlanFile",      // bool: the out-plan is garbage on failure
    "WritePlanFile",
    "TryLoad",           // nullptr miss must route to the build path
};

// Status-carrying local types: declared-then-never-read means the verdict
// was materialized and then ignored.
const char* const kStatusTypes[] = {"UpdateResult", "UpdateStatus",
                                    "SubmitResult"};

const char* const kChainKeywords[] = {"return", "if", "while", "for",
                                      "switch", "case", "delete", "throw",
                                      "goto", "else", "do", "new", "co_return"};

/// Parses a leading call chain `ident((::|.|->)ident)*` followed by `(` at
/// the start of [begin, end). Fills `components`; returns true when the
/// statement's first construct is a call.
bool LeadingCallChain(const std::string& s, size_t begin, size_t end,
                      std::vector<std::string>* components) {
  size_t p = s.find_first_not_of(" \t\n", begin);
  if (p == std::string::npos || p >= end) return false;
  if (!IsIdentChar(s[p]) || (s[p] >= '0' && s[p] <= '9')) return false;
  while (true) {
    size_t ib = p;
    while (p < end && IsIdentChar(s[p])) ++p;
    components->push_back(s.substr(ib, p - ib));
    size_t q = s.find_first_not_of(" \t\n", p);
    if (q == std::string::npos || q >= end) return false;
    if (s.compare(q, 2, "::") == 0 || s.compare(q, 2, "->") == 0) {
      p = q + 2;
    } else if (s[q] == '.') {
      p = q + 1;
    } else {
      return s[q] == '(';
    }
    p = s.find_first_not_of(" \t\n", p);
    if (p == std::string::npos || p >= end || !IsIdentChar(s[p])) {
      return false;
    }
  }
}

void CheckUncheckedStatus(const std::string& path, const TuModel& model,
                          std::vector<Violation>* out) {
  const std::string& s = model.stripped;
  for (const FunctionExtent& fn : model.functions) {
    // Part 1: a status-returning call as the head of a discard statement.
    // `(void)Call(...)` starts with '(', assignments start with the target,
    // `if (Call(...))` starts with a keyword — none of those parse as a
    // leading call chain, so they all pass.
    ForEachStatement(s, fn, [&](size_t begin, size_t end) {
      std::vector<std::string> chain;
      if (!LeadingCallChain(s, begin, end, &chain)) return;
      for (const char* kw : kChainKeywords) {
        if (chain.front() == kw) return;
      }
      const std::string& callee = chain.back();
      bool flagged = false;
      for (const char* t : kStatusCalls) {
        if (callee == t) flagged = true;
      }
      // GraphSnapshot's Load/Write names are too generic to ban bare;
      // qualified through the class they are status calls.
      if (!flagged && (callee == "Load" || callee == "Write")) {
        for (const std::string& c : chain) {
          if (c == "GraphSnapshot") flagged = true;
        }
      }
      if (flagged) {
        out->push_back(
            {path, LineOfOffset(s, begin), "unchecked-status",
             "result of " + callee +
                 "() is discarded: consume the verdict (assign or branch "
                 "on it) or document the intent with a (void) cast"});
      }
    });
    // Part 2: a status local declared and never read afterwards.
    ForEachStatement(s, fn, [&](size_t begin, size_t end) {
      std::string stmt = s.substr(begin, end - begin);
      for (const char* type_tok : kStatusTypes) {
        size_t t = FindToken(stmt, type_tok);
        if (t == std::string::npos) continue;
        size_t after = t + std::strlen(type_tok);
        if (after < stmt.size() && stmt[after] == ':') continue;  // Foo::kX
        size_t nb = stmt.find_first_not_of(" \t\n&*", after);
        if (nb == std::string::npos || !IsIdentChar(stmt[nb]) ||
            (stmt[nb] >= '0' && stmt[nb] <= '9')) {
          continue;
        }
        size_t ne = nb;
        while (ne < stmt.size() && IsIdentChar(stmt[ne])) ++ne;
        std::string name = stmt.substr(nb, ne - nb);
        std::string rest = s.substr(end, fn.body_end - end);
        if (FindToken(rest, name) == std::string::npos) {
          out->push_back(
              {path, LineOfOffset(s, begin), "unchecked-status",
               std::string(type_tok) + " '" + name +
                   "' is never read after this declaration: check the "
                   "status it carries or drop the variable"});
        }
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Rule: hot-loop-alloc
// ---------------------------------------------------------------------------

// The per-embedding hot path: Matcher::Extend / Matcher::SearchFrom and the
// MBS enumerator's Recurse/Maximal. Scratch there is pre-sized by the
// caller (assignment slots, conflict counters, the current set's reserve);
// an allocation per iteration would undo that discipline.
const char* const kHotFunctions[] = {"Extend", "SearchFrom", "Recurse",
                                     "Maximal"};

const char* const kAllocTokens[] = {
    "new",          "make_shared", "make_unique", "malloc",
    "calloc",       "realloc",     "push_back",   "emplace_back",
    "emplace",      "insert",      "resize",      "reserve",
    "assign",
};

void CheckHotLoopAlloc(const std::string& path, const TuModel& model,
                       std::vector<Violation>* out) {
  const std::string& s = model.stripped;
  for (const FunctionExtent& fn : model.functions) {
    bool hot = false;
    for (const char* h : kHotFunctions) {
      if (fn.name == h) hot = true;
    }
    if (!hot) continue;
    for (const LoopRegion& loop : fn.loops) {
      if (loop.depth != 1) continue;  // inner loops live inside the outer
      std::string body =
          s.substr(loop.body_begin, loop.body_end - loop.body_begin);
      for (const char* tok : kAllocTokens) {
        size_t k = FindToken(body, tok);
        if (k == std::string::npos) continue;
        out->push_back(
            {path, LineOfOffset(s, loop.body_begin + k), "hot-loop-alloc",
             std::string("'") + tok + "' inside a loop of hot function " +
                 fn.name +
                 "(): the match/verification hot path must not allocate or "
                 "grow containers per iteration — pre-size scratch outside "
                 "the loop"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: stats-roundtrip helpers
// ---------------------------------------------------------------------------

struct Member {
  std::string name;
  int line = 0;
};

// Counter-like member declarations of `struct_name` in `header` (already
// stripped): uint64_t / double / Counter / StreamingHistogram fields,
// including map<..., StreamingHistogram> aggregations.
std::vector<Member> ExtractCounterMembers(const std::string& stripped,
                                          const std::string& struct_name,
                                          bool* found_struct) {
  std::vector<Member> members;
  *found_struct = false;
  size_t pos = std::string::npos;
  for (const char* kw : {"struct", "class"}) {
    for (size_t k = FindToken(stripped, kw); k != std::string::npos;
         k = FindToken(stripped, kw, k + 1)) {
      size_t name_pos = FindToken(stripped, struct_name, k);
      if (name_pos == std::string::npos) continue;
      // The struct keyword must be immediately followed by the name.
      std::string between = stripped.substr(
          k + std::string(kw).size(), name_pos - k - std::string(kw).size());
      if (between.find_first_not_of(" \t\n") != std::string::npos) continue;
      pos = name_pos;
      break;
    }
    if (pos != std::string::npos) break;
  }
  if (pos == std::string::npos) return members;
  size_t open = stripped.find('{', pos);
  if (open == std::string::npos) return members;
  size_t close = MatchDelim(stripped, open, '{', '}');
  if (close == std::string::npos) return members;
  *found_struct = true;

  // Split the body into top-level statements (nested braces — method
  // bodies, brace initializers — do not split).
  size_t stmt_begin = open + 1;
  int depth = 0;
  for (size_t i = open + 1; i < close; ++i) {
    char c = stripped[i];
    if (c == '{') ++depth;
    if (c == '}') --depth;
    if ((c == ';' && depth == 0) || (c == '}' && depth == 0)) {
      size_t this_begin = stmt_begin;
      std::string stmt = stripped.substr(this_begin, i - this_begin);
      stmt_begin = i + 1;
      if (stmt.find('(') != std::string::npos) continue;  // functions
      bool counterish = false;
      for (const char* t : {"uint64_t", "double", "Counter",
                            "StreamingHistogram"}) {
        if (ContainsToken(stmt, t)) {
          counterish = true;
          break;
        }
      }
      if (!counterish) continue;
      // Member name: the last identifier before any initializer.
      size_t cut = stmt.find_first_of("={[");
      std::string decl = cut == std::string::npos ? stmt : stmt.substr(0, cut);
      size_t end = decl.find_last_not_of(" \t\n");
      if (end == std::string::npos) continue;
      size_t begin = end;
      while (begin > 0 && IsIdentChar(decl[begin - 1])) --begin;
      std::string name = decl.substr(begin, end - begin + 1);
      if (name.empty() || !IsIdentChar(name[0])) continue;
      // `>` directly before the name means a template type like
      // map<string, StreamingHistogram>; still a tracked member.
      members.push_back({name, LineOfOffset(stripped, this_begin)});
    }
  }
  return members;
}

std::string KeyOfMember(std::string name) {
  while (!name.empty() && name.back() == '_') name.pop_back();
  if (EndsWith(name, "_ms")) name.resize(name.size() - 3);
  // Snapshot/JSON naming divergences, kept deliberately small. Extend only
  // with a matching glossary entry.
  if (name == "slow_threshold") return "threshold";
  return name;
}

bool ReadFile(const std::filesystem::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

std::vector<Violation> LintStatsRoundTrip(const std::vector<StatsDecl>& decls,
                                          const std::string& json_source,
                                          const std::string& glossary) {
  std::vector<Violation> out;
  for (const StatsDecl& d : decls) {
    std::string stripped = StripCommentsAndStrings(d.header_contents);
    bool found = false;
    std::vector<Member> members =
        ExtractCounterMembers(stripped, d.struct_name, &found);
    if (!found) {
      out.push_back({d.header_path, 1, "stats-roundtrip",
                     "struct " + d.struct_name + " not found"});
      continue;
    }
    for (const Member& m : members) {
      std::string key = KeyOfMember(m.name);
      if (d.require_json &&
          json_source.find("\"" + key) == std::string::npos) {
        out.push_back({d.header_path, m.line, "stats-roundtrip",
                       d.struct_name + "::" + m.name +
                           " has no \"" + key +
                           "\" key in the stats JSON emitter "
                           "(src/service/stats.cc ToJson)"});
      }
      if (glossary.find(key) == std::string::npos) {
        out.push_back({d.header_path, m.line, "stats-roundtrip",
                       d.struct_name + "::" + m.name +
                           " is undocumented: add '" + key +
                           "' to the stats glossary in "
                           "docs/ARCHITECTURE.md"});
      }
    }
  }
  return out;
}

TuModel BuildTuModel(const std::string& contents) {
  TuModel model;
  model.stripped = StripCommentsAndStrings(contents);
  model.functions = ExtractFunctions(model.stripped);
  return model;
}

std::vector<Violation> LintFile(const std::string& path,
                                const std::string& contents) {
  std::vector<Violation> out;
  std::string stripped = StripCommentsAndStrings(contents);

  bool in_src = StartsWith(path, "src/");
  bool is_header = EndsWith(path, ".h");

  if (StartsWith(path, "src/why/") || StartsWith(path, "src/matcher/")) {
    CheckCancelPolling(path, stripped, &out);
  }
  if (!StartsWith(path, "src/common/rng.")) {
    CheckDeterminism(path, stripped, &out);
  }
  if (in_src && path != "src/common/check.h") {
    // check.h is the WHYQ_CHECK abort path: the one sanctioned stderr
    // write, immediately followed by std::abort().
    CheckOutputChannel(path, stripped, &out);
  }
  if (in_src && !StartsWith(path, "src/graph/")) {
    CheckNodeSpanMembers(path, stripped, &out);
  }
  bool graph_core = path == "src/graph/graph.h" ||
                    path == "src/graph/graph.cc" ||
                    path == "src/graph/update.cc" ||
                    path == "src/graph/snapshot.cc";
  if (in_src && !graph_core) {
    CheckGraphMutation(path, stripped, &out);
  }
  if (StartsWith(path, "src/server/") && path != "src/server/limits.h") {
    CheckLimitLiterals(path, stripped, "server-limits", kServerLimitsWhere,
                       &out);
  }
  if (StartsWith(path, "src/graph/snapshot.") &&
      path != "src/graph/snapshot.h") {
    CheckLimitLiterals(path, stripped, "snapshot-limits",
                       kSnapshotLimitsWhere, &out);
  }
  if (StartsWith(path, "src/service/plan.") && path != "src/service/plan.h") {
    CheckLimitLiterals(path, stripped, "plan-limits", kPlanLimitsWhere, &out);
  }
  if (is_header && (in_src || StartsWith(path, "tools/"))) {
    CheckHeaderGuard(path, stripped, &out);
  }

  // v2 flow-sensitive rules share one per-TU model.
  TuModel model;
  model.stripped = stripped;
  model.functions = ExtractFunctions(stripped);
  CheckUncheckedStatus(path, model, &out);
  if (in_src && !StartsWith(path, "src/graph/")) {
    CheckEpochPin(path, model, &out);
  }
  if (StartsWith(path, "src/why/") || StartsWith(path, "src/matcher/")) {
    CheckHotLoopAlloc(path, model, &out);
  }
  return out;
}

std::vector<Violation> LintTree(const std::string& root, std::string* error) {
  namespace fs = std::filesystem;
  std::vector<Violation> out;
  std::vector<std::string> files;
  for (const char* dir : {"src", "tools", "bench", "examples", "tests"}) {
    fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      std::string rel =
          fs::relative(entry.path(), fs::path(root)).generic_string();
      if (rel.find("lint_fixtures") != std::string::npos) continue;
      if (!EndsWith(rel, ".h") && !EndsWith(rel, ".cc") &&
          !EndsWith(rel, ".cpp")) {
        continue;
      }
      files.push_back(rel);
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::string& rel : files) {
    std::string contents;
    if (!ReadFile(fs::path(root) / rel, &contents)) {
      if (error != nullptr) *error = "cannot read " + rel;
      return out;
    }
    std::vector<Violation> v = LintFile(rel, contents);
    out.insert(out.end(), v.begin(), v.end());
  }

  // stats-roundtrip over the canonical declarations.
  std::string stats_h;
  std::string metrics_h;
  std::string matcher_h;
  std::string server_h;
  std::string stats_cc;
  std::string server_cc;
  std::string arch_md;
  for (const auto& [p, dst] :
       std::vector<std::pair<const char*, std::string*>>{
           {"src/service/stats.h", &stats_h},
           {"src/common/metrics.h", &metrics_h},
           {"src/matcher/matcher.h", &matcher_h},
           {"src/server/server.h", &server_h},
           {"src/service/stats.cc", &stats_cc},
           {"src/server/server.cc", &server_cc},
           {"docs/ARCHITECTURE.md", &arch_md}}) {
    if (!ReadFile(fs::path(root) / p, dst)) {
      if (error != nullptr) *error = std::string("cannot read ") + p;
      return out;
    }
  }
  std::vector<StatsDecl> decls = {
      {"src/service/stats.h", stats_h, "StatsSnapshot", true},
      {"src/service/stats.h", stats_h, "LatencySummary", true},
      {"src/service/stats.h", stats_h, "StageTotals", true},
      {"src/service/stats.h", stats_h, "WorkTotals", true},
      {"src/service/stats.h", stats_h, "ServiceStats", true},
      {"src/common/metrics.h", metrics_h, "RequestTrace", true},
      // MatcherStats is surfaced via benches/experiments, not the service
      // JSON; its counters still must be in the glossary.
      {"src/matcher/matcher.h", matcher_h, "MatcherStats", false},
      // The daemon's "server" block (ServerSnapshot::ToJson, server.cc).
      {"src/server/server.h", server_h, "ServerSnapshot", true},
  };
  // The emitters live in two files; the key check only needs the union.
  std::vector<Violation> v =
      LintStatsRoundTrip(decls, stats_cc + server_cc, arch_md);
  out.insert(out.end(), v.begin(), v.end());
  return out;
}

}  // namespace whyq::lint
