#ifndef WHYQ_TOOLS_LINT_LINT_H_
#define WHYQ_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

// whyq-lint: a token/structure-level checker for the repo-specific
// invariants clang-tidy cannot express (see docs/ARCHITECTURE.md
// "Static analysis" for each rule's rationale and origin):
//
//   cancel-poll      hot loops in src/why/ and src/matcher/ that perform
//                    MBS enumeration, greedy rounds, or per-root
//                    verification must poll the CancelToken in the loop.
//   determinism      no std::rand/srand/std::random_device/time(nullptr)
//                    outside src/common/rng.* — all randomness flows
//                    through the seeded whyq::Rng.
//   output-channel   no std::cout/std::cerr/printf-family output in
//                    library code under src/ (metrics and traces are the
//                    only output channel; CLI/tools/bench are exempt).
//   stats-roundtrip  every counter member of the stats structs must
//                    appear in the stats JSON emitter and the
//                    ARCHITECTURE.md stats glossary.
//   nodespan-member  no class outside src/graph/ may store a borrowed
//                    NodeSpan as a data member.
//   graph-mutation   no reference to the Graph's derived-storage members
//                    (label buckets, adjacency runs, attribute indexes)
//                    outside the graph core: GraphBuilder (graph.cc),
//                    GraphUpdater (src/graph/update.cc) and the snapshot
//                    codec are the only writers, so every structure
//                    mutation flows through Build or ApplyUpdate and the
//                    incremental-vs-rebuild equivalence tests cover it.
//   header-guard     every header under src/ carries the canonical
//                    WHYQ_<PATH>_H_ include guard (the companion
//                    one-TU-per-header compile check proves
//                    self-containment at build time).
//   server-limits    no decimal integer literal >= 64 under src/server/
//                    outside limits.h — every hard limit of the daemon
//                    (byte caps, connection caps, timeouts) lives in the
//                    centralized limits header with a provenance comment.
//                    Hex/binary literals are exempt (bit masks and UTF-8
//                    thresholds, not capacity knobs).
//   snapshot-limits  the same pigeonhole for the on-disk snapshot format:
//                    no decimal integer literal >= 64 in the snapshot
//                    layer outside src/graph/snapshot.h — alignment,
//                    section counts, and hash parameters live in the one
//                    header docs/SNAPSHOT_FORMAT.md is checked against.
//   plan-limits      the same pigeonhole for the on-disk compiled-plan
//                    format: no decimal integer literal >= 64 in the plan
//                    layer outside src/service/plan.h — alignment, section
//                    counts, size caps, and the store byte budget live in
//                    the one header docs/PLAN_FORMAT.md is checked against.
//   epoch-pin        (flow-sensitive) a borrowed graph view — the result
//                    of LabeledOutNeighbors / LabeledInNeighbors /
//                    NodesWithLabel / LabeledSlice — must not be stored
//                    into state that outlives the function (a `_`-suffixed
//                    member, a static local) unless the TU keeps a
//                    shared_ptr<const Graph> pin holding the epoch alive.
//                    Complements nodespan-member: that rule bans the
//                    member *declaration*, this one catches the *store*
//                    even through auto/aliased types.
//   unchecked-status (flow-sensitive) status results must be consumed:
//                    TrySubmit verdicts, ApplyUpdate(ByRebuild) success,
//                    LoadPlanFile/WritePlanFile/TryLoad outcomes and
//                    GraphSnapshot::Load/Write results may not head a
//                    discard statement (use a (void) cast to document a
//                    deliberate drop), and a local UpdateResult /
//                    UpdateStatus / SubmitResult must be read after its
//                    declaration.
//   hot-loop-alloc   (flow-sensitive) no allocation or container growth
//                    (new / make_shared / make_unique / malloc /
//                    push_back / resize / ...) inside the loops of the
//                    match/verification hot path — Matcher::Extend,
//                    Matcher::SearchFrom, the MBS enumerator's
//                    Recurse/Maximal — whose scratch is pre-sized by the
//                    caller.
//
// The linter deliberately avoids libclang: it lexes comments/strings away
// and works on the token stream plus brace structure, which is exact for
// the rules above and keeps the checker dependency-free and fast. The
// three flow-sensitive rules ride on a lightweight per-TU model (function
// extents, loop regions with nesting, statement structure) built from the
// same stripped stream — see BuildTuModel below.

namespace whyq::lint {

struct Violation {
  std::string file;  // repo-relative path
  int line = 0;      // 1-based
  std::string rule;  // stable rule id, e.g. "determinism"
  std::string message;
};

/// Replaces //- and /*-comments, string literals, and char literals with
/// spaces, preserving byte offsets and line structure so reported line
/// numbers match the original file. Raw strings are handled; escaped
/// quotes inside literals do not terminate them.
std::string StripCommentsAndStrings(const std::string& src);

/// One loop body inside a function: [body_begin, body_end) brackets the
/// statements between the loop's braces (or the single statement of a
/// braceless loop). depth is 1 for an outermost loop of its function.
struct LoopRegion {
  size_t body_begin = 0;
  size_t body_end = 0;
  int depth = 1;
};

/// One function definition: name is unqualified (`Extend` for
/// Matcher::Extend), [body_begin, body_end] brackets the braces, and
/// `loops` lists every loop region inside the body (including loops of
/// nested lambdas — they run as part of this function).
struct FunctionExtent {
  std::string name;
  size_t body_begin = 0;
  size_t body_end = 0;
  std::vector<LoopRegion> loops;
};

/// The per-TU statement/CFG model the flow-sensitive rules share: the
/// stripped source plus every function extent. Deliberately not a C++
/// parser — exact for this repo's clang-formatted style, conservative
/// (no extent, no findings) elsewhere.
struct TuModel {
  std::string stripped;
  std::vector<FunctionExtent> functions;
};

TuModel BuildTuModel(const std::string& contents);

/// Runs every per-file rule applicable to `path` (a repo-relative path —
/// rule applicability is derived from it) over `contents`. Used both by
/// the CLI (real files) and the fixture tests (fixture contents checked
/// under a virtual path).
std::vector<Violation> LintFile(const std::string& path,
                                const std::string& contents);

/// Rule "stats-roundtrip" over explicit document contents, so fixtures
/// can exercise it without touching the real tree. Counter members are
/// extracted from the struct declarations; each derived key must appear
/// quoted in `json_source` (JSON emitters) and as a word in `glossary`.
struct StatsDecl {
  std::string header_path;  // for messages
  std::string header_contents;
  std::string struct_name;
  bool require_json = true;  // MatcherStats is glossary-only
};
std::vector<Violation> LintStatsRoundTrip(const std::vector<StatsDecl>& decls,
                                          const std::string& json_source,
                                          const std::string& glossary);

/// Scans the real tree rooted at `root`: per-file rules over src/, tools/,
/// bench/, examples/, and tests/ (fixtures excluded), plus the
/// stats-roundtrip rule over the canonical files. Returns all violations;
/// `error` is set when required files cannot be read.
std::vector<Violation> LintTree(const std::string& root, std::string* error);

}  // namespace whyq::lint

#endif  // WHYQ_TOOLS_LINT_LINT_H_
