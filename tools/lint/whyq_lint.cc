// whyq_lint: enforce the repo-specific concurrency/determinism/
// observability invariants over the source tree. See tools/lint/lint.h
// for the rule set and docs/ARCHITECTURE.md "Static analysis" for each
// rule's rationale.
//
// Usage:
//   whyq_lint --root=DIR            # lint the whole tree rooted at DIR
//                                   # (also: --root DIR)
//   whyq_lint --as=VPATH FILE       # lint FILE as if it lived at VPATH
//                                   # (fixture/debug mode; repeatable)
//
// Exits 0 when clean, 1 on violations, 2 on usage or I/O errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace {

int Fail(const std::string& msg) {
  std::fprintf(stderr, "whyq_lint: %s\n", msg.c_str());
  return 2;
}

void Print(const std::vector<whyq::lint::Violation>& violations) {
  for (const auto& v : violations) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::vector<std::pair<std::string, std::string>> as_files;  // vpath, file
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--root=", 7) == 0) {
      root = a + 7;
    } else if (std::strcmp(a, "--root") == 0) {
      if (i + 1 >= argc) return Fail("--root needs a DIR argument");
      root = argv[++i];
    } else if (std::strncmp(a, "--as=", 5) == 0) {
      if (i + 1 >= argc) return Fail("--as=VPATH needs a FILE argument");
      as_files.emplace_back(a + 5, argv[++i]);
    } else {
      return Fail(std::string("unknown argument ") + a +
                  " (usage: whyq_lint --root=DIR | --as=VPATH FILE ...)");
    }
  }
  if (root.empty() == as_files.empty()) {
    return Fail("pass exactly one of --root=DIR or --as=VPATH FILE ...");
  }

  std::vector<whyq::lint::Violation> violations;
  if (!root.empty()) {
    std::string error;
    violations = whyq::lint::LintTree(root, &error);
    if (!error.empty()) return Fail(error);
  } else {
    for (const auto& [vpath, file] : as_files) {
      std::ifstream in(file, std::ios::binary);
      if (!in) return Fail("cannot read " + file);
      std::ostringstream ss;
      ss << in.rdbuf();
      std::vector<whyq::lint::Violation> v =
          whyq::lint::LintFile(vpath, ss.str());
      violations.insert(violations.end(), v.begin(), v.end());
    }
  }

  if (!violations.empty()) {
    Print(violations);
    std::fprintf(stderr, "whyq_lint: %zu violation(s)\n", violations.size());
    return 1;
  }
  std::printf("whyq_lint: OK\n");
  return 0;
}
