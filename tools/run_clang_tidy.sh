#!/bin/sh
# Runs clang-tidy (config: .clang-tidy) over the library and tool sources
# using the compile database exported by CMake, then diffs the findings
# against the committed baseline so only NEW findings fail the build.
#
#   tools/run_clang_tidy.sh [--changed] [build-dir]   # default: build
#
# --changed restricts the run to first-party files that differ from the
# merge-base with the default branch (plus uncommitted changes) — the
# fast pre-push loop; the full run stays the CI gate.
#
# Baseline workflow:
#   - tools/clang_tidy_baseline.txt holds known findings, one per line in
#     "<relative-file>:<check-name>" form (line numbers are deliberately
#     omitted so unrelated edits do not shift the baseline).
#   - A finding present in the baseline is reported as "(baselined)" and
#     does not fail the run.
#   - To accept a finding, append its line to the baseline WITH a comment
#     explaining why it cannot be fixed now.
#   - Fixing a baselined finding leaves a stale line; the script reports
#     stale entries so the baseline only ever shrinks silently, never grows.
#
# Exits 0 when clang-tidy is not installed (CI images without LLVM tooling
# and the pinned container both lack it; the raised -W flags and whyq_lint
# still gate those builds), 0 on no new findings, 1 otherwise.
set -u

cd "$(dirname "$0")/.." || exit 1
changed_only=0
if [ "${1:-}" = "--changed" ]; then
  changed_only=1
  shift
fi
build_dir="${1:-build}"
baseline="tools/clang_tidy_baseline.txt"

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
  echo "run_clang_tidy: $tidy_bin not found; skipping (install LLVM to enable)"
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json missing." >&2
  echo "Configure first: cmake -B $build_dir -S . " >&2
  echo "(CMAKE_EXPORT_COMPILE_COMMANDS is on by default in this project)" >&2
  exit 1
fi

# First-party TUs only: the compile database also contains third-party
# and generated sources (gtest, benchmark, header self-containment TUs).
files=$(sed -n 's/^ *"file": "\(.*\)",*$/\1/p' "$build_dir/compile_commands.json" \
  | sort -u \
  | grep -E "^$(pwd)/(src|tools|bench)/" || true)
if [ -z "$files" ]; then
  echo "run_clang_tidy: no first-party files in the compile database" >&2
  exit 1
fi

if [ "$changed_only" -eq 1 ]; then
  # Changed = diff against the merge-base with the default branch, plus
  # anything uncommitted. Headers count through their including TUs: a
  # changed .h selects every first-party TU, since the compile database
  # has no include graph (cheap and safe; the full run is the CI gate).
  base_ref=$(git rev-parse --verify -q origin/HEAD 2>/dev/null \
    || git rev-parse --verify -q main 2>/dev/null \
    || git rev-parse --verify -q master)
  merge_base=$(git merge-base HEAD "$base_ref" 2>/dev/null || echo "$base_ref")
  changed=$( (git diff --name-only "$merge_base" 2>/dev/null;
              git diff --name-only 2>/dev/null;
              git diff --name-only --cached 2>/dev/null) | sort -u)
  if [ -z "$changed" ]; then
    echo "run_clang_tidy: no changes vs $merge_base; nothing to lint"
    exit 0
  fi
  if echo "$changed" | grep -qE '^(src|tools|bench)/.*\.h$'; then
    echo "run_clang_tidy: changed header(s) detected; keeping all TUs"
  else
    kept=""
    for f in $files; do
      rel=${f#"$(pwd)"/}
      if echo "$changed" | grep -qFx "$rel"; then
        kept="$kept $f"
      fi
    done
    files=$kept
    if [ -z "$(echo "$files" | tr -d ' ')" ]; then
      echo "run_clang_tidy: no changed first-party TUs vs $merge_base"
      exit 0
    fi
  fi
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
# shellcheck disable=SC2086 — word-splitting of $files is intended.
"$tidy_bin" -p "$build_dir" --quiet $files 2>/dev/null \
  | grep -E '^[^ ]+:[0-9]+:[0-9]+: (warning|error):' > "$raw" || true

fail=0
new=0
while IFS= read -r line; do
  [ -z "$line" ] && continue
  file=$(echo "$line" | cut -d: -f1)
  rel=${file#"$(pwd)"/}
  check=$(echo "$line" | sed -n 's/.*\[\([a-z0-9.-]*\)\]$/\1/p')
  key="$rel:$check"
  if [ -f "$baseline" ] && grep -qF "$key" "$baseline"; then
    echo "(baselined) $line"
  else
    echo "NEW: $line" >&2
    new=$((new + 1))
    fail=1
  fi
done < "$raw"

# Stale baseline entries: keys no longer produced by the run.
if [ -f "$baseline" ]; then
  grep -v '^#' "$baseline" | grep -v '^[[:space:]]*$' | while IFS= read -r key; do
    key=${key%%#*}
    key=$(echo "$key" | sed 's/[[:space:]]*$//')
    [ -z "$key" ] && continue
    file=${key%%:*}
    check=${key#*:}
    if ! grep -qE "^$(pwd)/$file:[0-9]+:[0-9]+: .*\[$check\]$" "$raw"; then
      echo "stale baseline entry (finding fixed — remove the line): $key"
    fi
  done
fi

if [ "$fail" -ne 0 ]; then
  echo "run_clang_tidy: $new new finding(s); fix them or baseline with rationale" >&2
  exit 1
fi
echo "run_clang_tidy: OK (no new findings)"
exit 0
