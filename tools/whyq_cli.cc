// whyq command-line tool: generate graphs, inspect them, run subgraph
// queries from the textual DSL, and answer Why / Why-not / Why-empty /
// Why-so-many questions — the library's functionality end to end without
// writing C++.
//
// Usage:
//   whyq_cli generate --out=FILE [--profile=NAME|--bsbm=N] [--nodes=N]
//                     [--seed=S]
//   whyq_cli import EDGELIST --out=FILE [--attrs=K] [--seed=S]
//   whyq_cli dot GRAPH QUERYFILE
//   whyq_cli stats GRAPH
//   whyq_cli query GRAPH QUERYFILE [--limit=K]
//   whyq_cli why GRAPH QUERYFILE --entities=ID,ID,... [--algo=A] [common]
//   whyq_cli whynot GRAPH QUERYFILE --entities=ID,ID,... [--algo=A] [common]
//   whyq_cli whyempty GRAPH QUERYFILE [common]
//   whyq_cli whysomany GRAPH QUERYFILE --target=K [common]
//   whyq_cli serve-batch GRAPH QUESTIONSFILE [--workers=N] [--queue=N]
//                        [--cache=N] [--deadline-ms=D] [--stats-json=FILE]
//                        [--slow-ms=D] [common]
//   whyq_cli serve GRAPH... [--port=P] [--max-conns=N] [--idle-ms=D]
//                  [--drain-ms=D] [--stats-json=FILE] [--stats-period-ms=D]
//                  [--workers=N] [--queue=N] [--cache=N] [--deadline-ms=D]
//                  [--slow-ms=D] [common]
//   whyq_cli snapshot build GRAPH --out=FILE
//   whyq_cli snapshot info FILE
//   whyq_cli explain-plan PLANFILE [GRAPH]
//   whyq_cli update GRAPH BATCHFILE [--out=FILE]
//   whyq_cli figure1 --out=PREFIX
//   whyq_cli demo
//   whyq_cli --version
// Common flags: --budget=B --guard=M --semantics=iso|sim --threads=N
//               --trace --snapshot --plan-store=DIR
// --snapshot makes every GRAPH positional (dot/stats/query/why/whynot/
// whyempty/whysomany/serve-batch/serve) load a frozen snapshot image
// (docs/SNAPSHOT_FORMAT.md) via mmap instead of parsing the text format —
// O(ms) cold start, one physical copy shared across server processes.
// snapshot build freezes a text graph into such an image; snapshot info
// prints an image's header and section table without loading the graph.
// --trace prints the per-request stage breakdown (queue/parse/prepare/
// search) and hot-loop work counters after each why/whynot/whyempty/
// whysomany answer, and per-request under serve-batch.
// serve-batch --stats-json=FILE writes the full stats snapshot (counters,
// per-class latency histograms with p50/p95/p99, per-stage time totals,
// slow-query log) as JSON; --slow-ms=D retains traces of requests slower
// than D ms in the stats block and the JSON.
// --plan-store=DIR persists compiled query plans (docs/PLAN_FORMAT.md)
// across processes: why/whynot/whyempty/whysomany and serve-batch probe
// DIR before preparing a query and persist completed builds, so a restarted
// process answers a repeated question from a validated store load instead
// of re-running the answer match. serve gives each graph its own store
// under DIR/<graph name> and warm-loads its prepared cache from it at boot.
// explain-plan pretty-prints one stored plan file — content address, graph
// stamp, answer/candidate/path counts, footprint, canonical query — and,
// given a GRAPH (honoring --snapshot), re-validates the plan against it,
// exiting 2 when the plan is not servable for that graph.
// update applies an update-batch file (format: graph/graph_io.h — AN/DN/
// AE/DE/SA/DA mnemonics, one op per line, docs/ARCHITECTURE.md "Mutable
// graphs & epochs") to a text-format graph, prints the applied delta and
// the new generation, and with --out=FILE writes the updated graph back.
// A --snapshot graph is frozen (its columns alias the read-only mapped
// image) and is rejected with a typed error, not a crash.
// figure1 writes the paper's Fig. 1 example as PREFIX.graph/PREFIX.query
// and prints the node ids the paper's questions use.
// Algorithms: exact | approx/fast | iso (default approx/fast).
// --threads=N (default 1) runs each question's MBS verification and greedy
// gain scans on up to N executors; answers are identical to --threads=1.
// Under serve-batch it is the per-request width on top of --workers.
//
// serve runs the long-lived whyq_server daemon: an epoll event loop on
// 127.0.0.1 (--port=0, the default, binds an ephemeral port and prints
// it) answering newline-delimited JSON questions over every listed graph
// (request field "graph" selects by file basename; the first graph is the
// default). A full worker queue rejects immediately with retry_after_ms
// (admission control); SIGTERM/SIGINT triggers a graceful drain bounded
// by --drain-ms. --stats-json=FILE makes the daemon dump the full stats
// document periodically (atomic rename; --stats-period-ms) and once more
// at exit. Hard limits live in src/server/limits.h.
//
// serve-batch reads one question per line and executes the batch on a
// WhyqService worker pool, printing one result row per question plus the
// service stats block. Line format (# starts a comment):
//   why       QUERYFILE ID[,ID...]
//   whynot    QUERYFILE ID[,ID...]
//   whyempty  QUERYFILE
//   whysomany QUERYFILE K
//
// Every subcommand exits nonzero on parse or I/O failure; `why`/`whynot`/
// `whyempty`/`whysomany` additionally exit 2 when no rewrite was found
// (a valid "no explanation within budget" outcome, not an error).

#include <signal.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gen/figure1.h"
#include "graph/snapshot.h"
#include "server/server.h"
#include "service/plan.h"
#include "whyq.h"

namespace whyq::cli {
namespace {

// SIGTERM/SIGINT request a graceful stop: serve drains the event loop,
// serve-batch stops submitting new questions. The handler only sets this
// flag (the one async-signal-safe thing it may do); both commands poll it.
volatile std::sig_atomic_t g_stop = 0;

extern "C" void OnStopSignal(int) { g_stop = 1; }

void InstallStopHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnStopSignal;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: the signal must interrupt epoll_wait/sleep so the
  // drain starts within one poll tick.
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

struct Options {
  std::string out;
  std::string profile;
  size_t bsbm = 0;
  size_t nodes = 0;
  uint64_t seed = 7;
  size_t limit = 20;
  double attrs = 0.0;
  size_t target = 10;
  std::vector<NodeId> entities;
  std::string algo = "auto";
  double budget = 4.0;
  size_t guard = 2;
  MatchSemantics semantics = MatchSemantics::kIsomorphism;
  size_t workers = 4;
  size_t queue = 256;
  size_t cache = 64;
  double deadline_ms = 0;
  size_t threads = 1;
  std::string stats_json;
  std::string plan_store;  // persistent compiled-plan directory (empty = off)
  double slow_ms = 0;
  bool trace = false;
  bool snapshot = false;  // GRAPH positionals are snapshot images
  size_t port = 0;  // serve: 0 binds an ephemeral port
  size_t max_conns = whyq::server::kMaxConnections;
  double idle_ms = whyq::server::kIdleTimeoutMs;
  double drain_ms = whyq::server::kDrainDeadlineMs;
  double stats_period_ms = whyq::server::kStatsPeriodMs;
  std::vector<std::string> positional;
};

// Strict numeric parsing: the whole token must be consumed. Silent
// best-effort strtoul coercion turned typos like --bsbm=1e4 into 1 before;
// now every malformed flag fails the invocation with a nonzero exit.
bool ParseUint64(const char* v, uint64_t* out) {
  if (v == nullptr || *v == '\0') return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long x = std::strtoull(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0') return false;
  *out = static_cast<uint64_t>(x);
  return true;
}

bool ParseSize(const char* v, size_t* out) {
  uint64_t x = 0;
  if (!ParseUint64(v, &x)) return false;
  *out = static_cast<size_t>(x);
  return true;
}

bool ParseDouble(const char* v, double* out) {
  if (v == nullptr || *v == '\0') return false;
  char* end = nullptr;
  errno = 0;
  double x = std::strtod(v, &end);
  if (errno != 0 || end == v || *end != '\0') return false;
  *out = x;
  return true;
}

bool ParseEntityList(const std::string& v, std::vector<NodeId>* out,
                     std::string* error) {
  std::stringstream ss(v);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    uint64_t id = 0;
    if (!ParseUint64(tok.c_str(), &id) || id > UINT32_MAX) {
      *error = "bad entity id '" + tok + "'";
      return false;
    }
    out->push_back(static_cast<NodeId>(id));
  }
  if (out->empty()) {
    *error = "empty entity list";
    return false;
  }
  return true;
}

bool ParseArgs(int argc, char** argv, Options* o, std::string* error) {
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    auto value_of = [&](const char* flag) -> const char* {
      size_t n = std::strlen(flag);
      if (a.compare(0, n, flag) == 0 && a.size() > n && a[n] == '=') {
        return a.c_str() + n + 1;
      }
      return nullptr;
    };
    bool ok = true;
    if (const char* v = value_of("--out")) {
      o->out = v;
    } else if (const char* v = value_of("--profile")) {
      o->profile = v;
    } else if (const char* v = value_of("--bsbm")) {
      ok = ParseSize(v, &o->bsbm);
    } else if (const char* v = value_of("--nodes")) {
      ok = ParseSize(v, &o->nodes);
    } else if (const char* v = value_of("--seed")) {
      ok = ParseUint64(v, &o->seed);
    } else if (const char* v = value_of("--attrs")) {
      ok = ParseDouble(v, &o->attrs);
    } else if (const char* v = value_of("--limit")) {
      ok = ParseSize(v, &o->limit);
    } else if (const char* v = value_of("--target")) {
      ok = ParseSize(v, &o->target);
    } else if (const char* v = value_of("--budget")) {
      ok = ParseDouble(v, &o->budget);
    } else if (const char* v = value_of("--guard")) {
      ok = ParseSize(v, &o->guard);
    } else if (const char* v = value_of("--workers")) {
      ok = ParseSize(v, &o->workers) && o->workers > 0;
    } else if (const char* v = value_of("--queue")) {
      ok = ParseSize(v, &o->queue) && o->queue > 0;
    } else if (const char* v = value_of("--cache")) {
      ok = ParseSize(v, &o->cache);
    } else if (const char* v = value_of("--deadline-ms")) {
      ok = ParseDouble(v, &o->deadline_ms);
    } else if (const char* v = value_of("--threads")) {
      ok = ParseSize(v, &o->threads) && o->threads > 0;
    } else if (const char* v = value_of("--algo")) {
      o->algo = v;
      if (o->algo != "auto" && o->algo != "exact" && o->algo != "iso" &&
          o->algo != "approx" && o->algo != "fast") {
        *error = "unknown algo (use exact|approx|fast|iso)";
        return false;
      }
    } else if (const char* v = value_of("--semantics")) {
      if (std::string(v) == "sim") {
        o->semantics = MatchSemantics::kSimulation;
      } else if (std::string(v) == "iso") {
        o->semantics = MatchSemantics::kIsomorphism;
      } else {
        *error = "unknown semantics (use iso|sim)";
        return false;
      }
    } else if (const char* v = value_of("--entities")) {
      if (!ParseEntityList(v, &o->entities, error)) return false;
    } else if (const char* v = value_of("--stats-json")) {
      o->stats_json = v;
    } else if (const char* v = value_of("--plan-store")) {
      o->plan_store = v;
    } else if (const char* v = value_of("--slow-ms")) {
      ok = ParseDouble(v, &o->slow_ms);
    } else if (const char* v = value_of("--port")) {
      ok = ParseSize(v, &o->port) && o->port <= UINT16_MAX;
    } else if (const char* v = value_of("--max-conns")) {
      ok = ParseSize(v, &o->max_conns) && o->max_conns > 0;
    } else if (const char* v = value_of("--idle-ms")) {
      ok = ParseDouble(v, &o->idle_ms);
    } else if (const char* v = value_of("--drain-ms")) {
      ok = ParseDouble(v, &o->drain_ms) && o->drain_ms > 0;
    } else if (const char* v = value_of("--stats-period-ms")) {
      ok = ParseDouble(v, &o->stats_period_ms) && o->stats_period_ms > 0;
    } else if (a == "--trace") {
      o->trace = true;
    } else if (a == "--snapshot") {
      o->snapshot = true;
    } else if (a.rfind("--", 0) == 0) {
      *error = "unknown flag " + a;
      return false;
    } else {
      o->positional.push_back(a);
    }
    if (!ok) {
      *error = "bad value in " + a;
      return false;
    }
  }
  return true;
}

int Fail(const std::string& msg) {
  std::fprintf(stderr, "whyq: %s\n", msg.c_str());
  return 1;
}

std::optional<Graph> LoadGraph(const std::string& path) {
  std::string err;
  std::optional<Graph> g = ReadGraphFromFile(path, &err);
  if (!g.has_value()) std::fprintf(stderr, "whyq: %s\n", err.c_str());
  return g;
}

// A graph loaded either from the text format (heap-built) or, with
// --snapshot, from a frozen snapshot image whose POD columns borrow the
// mmap'ed bytes. get() lends the graph to one-shot commands; share()
// hands ownership to long-lived services (for snapshots, an aliasing
// shared_ptr keeps the mapping alive as long as the graph is referenced).
struct LoadedGraph {
  std::optional<Graph> owned;
  std::shared_ptr<GraphSnapshot> snap;

  const Graph& get() const {
    return snap != nullptr ? snap->graph() : *owned;
  }
  std::shared_ptr<const Graph> share() {
    if (snap != nullptr) {
      return std::shared_ptr<const Graph>(snap, &snap->graph());
    }
    return std::make_shared<const Graph>(std::move(*owned));
  }
};

std::optional<LoadedGraph> LoadGraphAuto(const Options& o,
                                         const std::string& path) {
  LoadedGraph lg;
  if (o.snapshot) {
    std::string err;
    lg.snap = GraphSnapshot::Load(path, &err);
    if (lg.snap == nullptr) {
      std::fprintf(stderr, "whyq: %s\n", err.c_str());
      return std::nullopt;
    }
  } else {
    lg.owned = LoadGraph(path);
    if (!lg.owned.has_value()) return std::nullopt;
  }
  return lg;
}

std::optional<Query> LoadQuery(const std::string& path, const Graph& g) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "whyq: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::stringstream buf;
  buf << is.rdbuf();
  std::string err;
  std::optional<Query> q = ParseQuery(buf.str(), g, &err);
  if (!q.has_value()) std::fprintf(stderr, "whyq: %s\n", err.c_str());
  return q;
}

AnswerConfig MakeConfig(const Options& o) {
  AnswerConfig cfg;
  cfg.budget = o.budget;
  cfg.guard_m = o.guard;
  cfg.semantics = o.semantics;
  cfg.exact_time_limit_ms = 30000;
  cfg.threads = o.threads;
  return cfg;
}

// The graph's plan-relocation fingerprint: frozen (snapshot-backed) graphs
// already carry the content hash as identity(); heap graphs pay one
// GraphFingerprint pass (same rule as WhyqService).
uint64_t PlanFingerprint(const Graph& g) {
  return g.frozen() ? g.identity() : GraphFingerprint(g);
}

// A one-shot question's prepared artifacts routed through --plan-store:
// probe the store, build and persist on a miss. The store handle is kept
// alive until the command returns so the async save drains (its destructor
// flushes the writer queue).
struct StorePrepared {
  std::shared_ptr<PlanStore> store;
  std::shared_ptr<const PreparedQuery> prepared;
};

std::optional<StorePrepared> PrepareViaStore(const Options& o, const Graph& g,
                                             const Query& q,
                                             size_t max_paths) {
  if (o.plan_store.empty()) return std::nullopt;
  StorePrepared sp;
  sp.store = std::make_shared<PlanStore>(o.plan_store);
  uint64_t fp = PlanFingerprint(g);
  std::string canonical = WriteQuery(q, g);
  sp.prepared = sp.store->TryLoad(g, fp, o.semantics, max_paths, canonical);
  if (sp.prepared == nullptr) {
    bool complete = false;
    sp.prepared = PrepareQuery(g, Query(q), o.semantics, max_paths,
                               /*cancel=*/nullptr, &complete, o.threads);
    if (complete) {
      sp.store->SaveAsync(sp.prepared, std::move(canonical), max_paths,
                          PlanStamp{fp, g.identity(), g.generation()});
    }
  }
  return sp;
}

void PrintAnswer(const Graph& g, const Query& q, const RewriteAnswer& a) {
  std::printf("%s\n", a.Explain(g).c_str());
  if (!a.found) return;
  std::printf("explanation:\n%s", ExplainRewrite(g, q, a.ops).ToString().c_str());
  std::printf("rewritten query:\n%s", WriteQuery(a.rewritten, g).c_str());
}

int CmdGenerate(const Options& o) {
  if (o.out.empty()) return Fail("generate needs --out=FILE");
  Graph g;
  if (o.bsbm > 0) {
    BsbmConfig bc;
    bc.products = o.bsbm;
    bc.seed = o.seed;
    g = GenerateBsbm(bc);
  } else if (!o.profile.empty()) {
    const DatasetProfile* match = nullptr;
    for (const DatasetProfile& p : kAllProfiles) {
      if (o.profile == DatasetProfileName(p)) match = &p;
    }
    if (match == nullptr) {
      return Fail("unknown profile (dbpedia|yago|freebase|pokec|imdb)");
    }
    g = GenerateProfile(*match, o.nodes, o.seed);
  } else {
    return Fail("generate needs --profile=NAME or --bsbm=N");
  }
  if (!WriteGraphToFile(g, o.out)) return Fail("cannot write " + o.out);
  std::printf("wrote %s: %s\n", o.out.c_str(),
              ComputeStats(g).ToString().c_str());
  return 0;
}

int CmdImport(const Options& o) {
  if (o.positional.empty()) return Fail("import needs an edge-list file");
  if (o.out.empty()) return Fail("import needs --out=FILE");
  std::string err;
  std::optional<Graph> bare =
      ReadEdgeListFromFile(o.positional[0], EdgeListOptions(), &err);
  if (!bare.has_value()) return Fail(err);
  Graph out = std::move(*bare);
  if (o.attrs > 0) {
    DecorationConfig dc;
    dc.avg_attrs = o.attrs;
    dc.seed = o.seed;
    out = DecorateGraph(out, dc);
  }
  if (!WriteGraphToFile(out, o.out)) return Fail("cannot write " + o.out);
  std::printf("imported %s: %s\n", o.out.c_str(),
              ComputeStats(out).ToString().c_str());
  return 0;
}

int CmdDot(const Options& o) {
  if (o.positional.size() < 2) return Fail("dot needs GRAPH QUERYFILE");
  std::optional<LoadedGraph> lg = LoadGraphAuto(o, o.positional[0]);
  if (!lg.has_value()) return 1;
  const Graph& g = lg->get();
  std::optional<Query> q = LoadQuery(o.positional[1], g);
  if (!q.has_value()) return 1;
  std::printf("%s", QueryToDot(*q, g).c_str());
  return 0;
}

int CmdStats(const Options& o) {
  if (o.positional.empty()) return Fail("stats needs a graph file");
  std::optional<LoadedGraph> lg = LoadGraphAuto(o, o.positional[0]);
  if (!lg.has_value()) return 1;
  std::printf("%s\n", ComputeStats(lg->get()).ToString().c_str());
  return 0;
}

int CmdQuery(const Options& o) {
  if (o.positional.size() < 2) return Fail("query needs GRAPH QUERYFILE");
  std::optional<LoadedGraph> lg = LoadGraphAuto(o, o.positional[0]);
  if (!lg.has_value()) return 1;
  const Graph& g = lg->get();
  std::optional<Query> q = LoadQuery(o.positional[1], g);
  if (!q.has_value()) return 1;
  std::unique_ptr<MatchEngine> engine = MakeMatchEngine(g, o.semantics);
  std::vector<NodeId> answers = engine->MatchOutput(*q);
  std::printf("%zu answers (%s semantics)\n", answers.size(),
              MatchSemanticsName(o.semantics));
  for (size_t i = 0; i < answers.size() && i < o.limit; ++i) {
    std::printf("  node %u", answers[i]);
    for (const AttrEntry& e : g.attrs(answers[i])) {
      std::printf(" %s=%s", g.AttrName(e.attr).c_str(),
                  e.value.ToString().c_str());
    }
    std::printf("\n");
  }
  if (answers.size() > o.limit) {
    std::printf("  ... (%zu more; raise --limit)\n",
                answers.size() - o.limit);
  }
  return 0;
}

int CmdWhy(const Options& o, bool why_not) {
  if (o.positional.size() < 2) return Fail("needs GRAPH QUERYFILE");
  if (o.entities.empty()) return Fail("needs --entities=ID,ID,...");
  std::optional<LoadedGraph> lg = LoadGraphAuto(o, o.positional[0]);
  if (!lg.has_value()) return 1;
  const Graph& g = lg->get();
  RequestTrace trace;
  Timer stage;
  std::optional<Query> q = LoadQuery(o.positional[1], g);
  if (!q.has_value()) return 1;
  trace.parse_ms = stage.ElapsedMillis();
  stage.Reset();
  AnswerConfig cfg = MakeConfig(o);
  std::optional<StorePrepared> sp =
      PrepareViaStore(o, g, *q, cfg.path_index_paths);
  std::vector<NodeId> answers;
  if (sp.has_value()) {
    // Store-routed prepare: the answers and the sampled PathIndex come from
    // the (loaded or freshly persisted) plan. Answers are byte-identical to
    // the direct path — a fresh deterministic sample equals the stored one.
    answers = sp->prepared->answers;
    cfg.path_index = &sp->prepared->path_index;
  } else {
    std::unique_ptr<MatchEngine> engine = MakeMatchEngine(g, o.semantics);
    answers = engine->MatchOutput(*q);
  }
  trace.answer_match_ms = stage.ElapsedMillis();
  trace.prepare_ms = trace.answer_match_ms;
  stage.Reset();
  RewriteAnswer a;
  if (why_not) {
    WhyNotQuestion w;
    w.missing = o.entities;
    if (o.algo == "exact") {
      a = ExactWhyNot(g, *q, answers, w, cfg);
    } else if (o.algo == "iso") {
      a = IsoWhyNot(g, *q, answers, w, cfg);
    } else {
      a = FastWhyNot(g, *q, answers, w, cfg);
    }
  } else {
    WhyQuestion w{o.entities};
    if (o.algo == "exact") {
      a = ExactWhy(g, *q, answers, w, cfg);
    } else if (o.algo == "iso") {
      a = IsoWhy(g, *q, answers, w, cfg);
    } else {
      a = ApproxWhy(g, *q, answers, w, cfg);
    }
  }
  trace.search_ms = stage.ElapsedMillis();
  if (o.algo == "exact") {
    trace.mbs_enumerated = a.sets_enumerated;
    trace.mbs_verified = a.sets_verified;
  } else {
    trace.greedy_rounds = a.sets_verified;
  }
  trace.ctx_hits = a.ctx_hits;
  trace.ctx_misses = a.ctx_misses;
  trace.ctx_delta_builds = a.ctx_delta_builds;
  trace.ctx_pruned = a.ctx_pruned;
  PrintAnswer(g, *q, a);
  if (o.trace) std::printf("%s", trace.ToString().c_str());
  return a.found ? 0 : 2;
}

int CmdWhyEmpty(const Options& o) {
  if (o.positional.size() < 2) return Fail("needs GRAPH QUERYFILE");
  std::optional<LoadedGraph> lg = LoadGraphAuto(o, o.positional[0]);
  if (!lg.has_value()) return 1;
  const Graph& g = lg->get();
  RequestTrace trace;
  Timer stage;
  std::optional<Query> q = LoadQuery(o.positional[1], g);
  if (!q.has_value()) return 1;
  trace.parse_ms = stage.ElapsedMillis();
  stage.Reset();
  AnswerConfig cfg = MakeConfig(o);
  std::optional<StorePrepared> sp =
      PrepareViaStore(o, g, *q, cfg.path_index_paths);
  if (sp.has_value()) cfg.path_index = &sp->prepared->path_index;
  WhyEmptyResult r = AnswerWhyEmpty(g, *q, cfg);
  trace.search_ms = stage.ElapsedMillis();
  if (o.trace) std::printf("%s", trace.ToString().c_str());
  if (!r.found) {
    std::printf("not repairable within budget %.1f\n", o.budget);
    return 2;
  }
  if (r.ops.empty()) {
    std::printf("the query already has answers\n");
  } else {
    std::printf("repaired at cost %.2f via { %s }\n", r.cost,
                DescribeOperators(r.ops, g).c_str());
    std::printf("%s", ExplainRewrite(g, *q, r.ops).ToString().c_str());
  }
  std::printf("%zu sample answers\n", r.sample_answers.size());
  return 0;
}

int CmdWhySoMany(const Options& o) {
  if (o.positional.size() < 2) return Fail("needs GRAPH QUERYFILE");
  std::optional<LoadedGraph> lg = LoadGraphAuto(o, o.positional[0]);
  if (!lg.has_value()) return 1;
  const Graph& g = lg->get();
  RequestTrace trace;
  Timer stage;
  std::optional<Query> q = LoadQuery(o.positional[1], g);
  if (!q.has_value()) return 1;
  trace.parse_ms = stage.ElapsedMillis();
  stage.Reset();
  AnswerConfig cfg = MakeConfig(o);
  std::optional<StorePrepared> sp =
      PrepareViaStore(o, g, *q, cfg.path_index_paths);
  std::vector<NodeId> answers;
  if (sp.has_value()) {
    answers = sp->prepared->answers;
    cfg.path_index = &sp->prepared->path_index;
  } else {
    Matcher matcher(g);
    answers = matcher.MatchOutput(*q);
  }
  trace.answer_match_ms = stage.ElapsedMillis();
  trace.prepare_ms = trace.answer_match_ms;
  stage.Reset();
  WhySoManyResult r = AnswerWhySoMany(g, *q, answers, o.target, cfg);
  trace.search_ms = stage.ElapsedMillis();
  std::printf("%zu -> %zu answers via { %s }\n", r.before, r.after,
              DescribeOperators(r.ops, g).c_str());
  std::printf("%s", ExplainRewrite(g, *q, r.ops).ToString().c_str());
  if (o.trace) std::printf("%s", trace.ToString().c_str());
  return r.found ? 0 : 2;
}

// Reads the raw text of a query file, memoizing by path so a batch that
// asks many questions about the same query parses/prepares it once (the
// service caches prepared artifacts by canonical query text).
const std::string* QueryTextOf(const std::string& path,
                               std::map<std::string, std::string>* texts) {
  auto it = texts->find(path);
  if (it != texts->end()) return &it->second;
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "whyq: cannot open %s\n", path.c_str());
    return nullptr;
  }
  std::stringstream buf;
  buf << is.rdbuf();
  return &texts->emplace(path, buf.str()).first->second;
}

// Parses one questions-file line into a request; empty lines and `#`
// comments yield no request (ok=true, has=false).
bool ParseQuestionLine(const std::string& line, const Options& o,
                       std::map<std::string, std::string>* texts,
                       ServiceRequest* req, bool* has, std::string* error) {
  *has = false;
  std::stringstream ss(line);
  std::string kind;
  if (!(ss >> kind) || kind[0] == '#') return true;
  std::string queryfile;
  if (!(ss >> queryfile)) {
    *error = "missing query file";
    return false;
  }
  const std::string* text = QueryTextOf(queryfile, texts);
  if (text == nullptr) {
    *error = "cannot open " + queryfile;
    return false;
  }
  req->query_text = *text;
  req->config = MakeConfig(o);
  req->deadline_ms = o.deadline_ms;
  if (o.algo == "exact") {
    req->algo = AlgoChoice::kExact;
  } else if (o.algo == "iso") {
    req->algo = AlgoChoice::kIso;
  } else {
    req->algo = AlgoChoice::kAuto;
  }
  std::string rest;
  ss >> rest;
  if (kind == "why" || kind == "whynot") {
    req->kind = kind == "why" ? RequestKind::kWhy : RequestKind::kWhyNot;
    if (rest.empty()) {
      *error = "missing entity list";
      return false;
    }
    req->entities.clear();
    if (!ParseEntityList(rest, &req->entities, error)) return false;
  } else if (kind == "whyempty") {
    req->kind = RequestKind::kWhyEmpty;
  } else if (kind == "whysomany") {
    req->kind = RequestKind::kWhySoMany;
    size_t k = o.target;
    if (!rest.empty() && !ParseSize(rest.c_str(), &k)) {
      *error = "bad target '" + rest + "'";
      return false;
    }
    req->target_k = k;
  } else {
    *error = "unknown question kind '" + kind + "'";
    return false;
  }
  *has = true;
  return true;
}

// serve-batch: run a file of questions through the concurrent service.
// One line per question; all questions share the graph, the worker pool,
// and the prepared-question cache. Prints one result row per question in
// input order, then the service stats table. Exit 0 only when every line
// parsed and every response came back kOk.
int CmdServeBatch(const Options& o) {
  if (o.positional.size() < 2) {
    return Fail("serve-batch needs GRAPH QUESTIONSFILE");
  }
  std::optional<LoadedGraph> lg = LoadGraphAuto(o, o.positional[0]);
  if (!lg.has_value()) return 1;
  std::ifstream qs(o.positional[1]);
  if (!qs) return Fail("cannot open " + o.positional[1]);

  InstallStopHandlers();
  ServiceConfig sc;
  sc.workers = o.workers;
  sc.queue_capacity = o.queue;
  sc.cache_capacity = o.cache;
  sc.intra_threads = o.threads;
  sc.slow_query_ms = o.slow_ms;
  std::shared_ptr<PlanStore> store;
  if (!o.plan_store.empty()) {
    store = std::make_shared<PlanStore>(o.plan_store);
    sc.plan_store = store;
  }
  WhyqService service(lg->share(), sc);

  std::map<std::string, std::string> texts;
  std::vector<std::future<ServiceResponse>> futures;
  std::vector<std::string> labels;
  std::string line;
  size_t lineno = 0;
  int rc = 0;
  while (std::getline(qs, line)) {
    ++lineno;
    ServiceRequest req;
    bool has = false;
    std::string err;
    if (!ParseQuestionLine(line, o, &texts, &req, &has, &err)) {
      std::fprintf(stderr, "whyq: %s:%zu: %s\n", o.positional[1].c_str(),
                   lineno, err.c_str());
      rc = 1;
      continue;
    }
    if (!has) continue;
    labels.push_back(std::string(RequestKindName(req.kind)) + " line " +
                     std::to_string(lineno));
    // Backpressure: TrySubmit reports a full queue as an explicit status;
    // retry until the pool drains (or a stop signal arrives). TrySubmit
    // consumes its argument, so each attempt gets its own copy — moving
    // here would leave retries submitting a hollowed-out request.
    bool accepted = false;
    while (!accepted && g_stop == 0) {
      auto promise = std::make_shared<std::promise<ServiceResponse>>();
      SubmitResult admitted = service.TrySubmit(
          req, [promise](ServiceResponse resp) {
            promise->set_value(std::move(resp));
          });
      switch (admitted) {
        case SubmitResult::kAccepted:
          futures.push_back(promise->get_future());
          accepted = true;
          break;
        case SubmitResult::kQueueFull:
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          break;
        case SubmitResult::kShutdown:
          labels.pop_back();
          rc = 1;
          accepted = true;  // unreachable in practice; avoid spinning
          break;
      }
    }
    if (g_stop != 0 && !accepted) {
      labels.pop_back();
      break;  // stop signal: drain what was already admitted
    }
  }
  // Pin one epoch for rendering every response's explanation (serve-batch
  // never updates the graph, so this is the only epoch there is).
  std::shared_ptr<const Graph> pinned = service.graph();
  const Graph& graph = *pinned;
  for (size_t i = 0; i < futures.size(); ++i) {
    ServiceResponse r = futures[i].get();
    if (r.status != ResponseStatus::kOk) {
      std::printf("%-22s %s %s\n", labels[i].c_str(),
                  ResponseStatusName(r.status), r.error.c_str());
      rc = 1;
      continue;
    }
    std::string detail;
    if (r.answer.found) {
      detail = r.answer.Explain(graph);
    } else if (r.why_empty.found) {
      detail = "repaired at cost " + std::to_string(r.why_empty.cost);
    } else if (r.why_so_many.found) {
      detail = std::to_string(r.why_so_many.before) + " -> " +
               std::to_string(r.why_so_many.after) + " answers";
    } else {
      detail = "no rewrite found";
    }
    std::printf("%-22s ok %7.1fms%s%s  %s\n", labels[i].c_str(), r.latency_ms,
                r.truncated ? " truncated" : "",
                r.cache_hit ? " cached" : "", detail.c_str());
    if (o.trace) std::printf("%s", r.trace.ToString().c_str());
  }
  // Drain pending plan persists before snapshotting, so the printed stats
  // (and the JSON scripts reconcile) include every durable write.
  if (store != nullptr) store->Flush();
  StatsSnapshot snap = service.Stats();
  std::printf("\n%s\n", snap.ToString().c_str());
  if (!o.stats_json.empty()) {
    std::ofstream js(o.stats_json);
    if (!js) return Fail("cannot write " + o.stats_json);
    js << snap.ToJson() << "\n";
    if (!js) return Fail("cannot write " + o.stats_json);
    std::printf("stats json written to %s\n", o.stats_json.c_str());
  }
  return rc;
}

// The graph's wire name: file basename without its extension
// ("data/bsbm.graph" serves as "bsbm").
std::string GraphName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base = base.substr(0, dot);
  return base;
}

// serve: the long-lived daemon. Loads every listed graph, binds the
// loopback listener, prints the port (scripts parse the "listening on"
// line), and runs the event loop until SIGTERM/SIGINT. Exit 0 iff the
// drain completed within --drain-ms.
int CmdServe(const Options& o) {
  if (o.positional.empty()) return Fail("serve needs at least one GRAPH");
  std::vector<std::pair<std::string, std::shared_ptr<const Graph>>> graphs;
  for (const std::string& path : o.positional) {
    std::optional<LoadedGraph> lg = LoadGraphAuto(o, path);
    if (!lg.has_value()) return 1;
    std::string name = GraphName(path);
    for (const auto& [existing, unused] : graphs) {
      if (existing == name) {
        return Fail("duplicate graph name '" + name + "'");
      }
    }
    graphs.emplace_back(name, lg->share());
  }
  server::ServerConfig sc;
  sc.port = static_cast<uint16_t>(o.port);
  sc.max_connections = o.max_conns;
  sc.idle_timeout_ms = o.idle_ms;
  sc.drain_deadline_ms = o.drain_ms;
  sc.stats_json_path = o.stats_json;
  sc.stats_period_ms = o.stats_period_ms;
  sc.service.workers = o.workers;
  sc.service.queue_capacity = o.queue;
  sc.service.cache_capacity = o.cache;
  sc.service.default_deadline_ms = o.deadline_ms;
  sc.service.intra_threads = o.threads;
  sc.service.slow_query_ms = o.slow_ms;
  sc.plan_store_dir = o.plan_store;
  server::WhyqServer srv(std::move(graphs), sc);
  std::string err;
  if (!srv.Start(&err)) return Fail(err);
  InstallStopHandlers();
  std::printf("whyq_server listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(srv.port()));
  std::printf("graphs:");
  for (const std::string& name : srv.graph_names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);  // scripts behind a pipe parse the port line
  int rc = srv.Run(&g_stop);
  server::ServerSnapshot snap = srv.Snapshot();
  std::printf(
      "whyq_server drained %s: %llu conns, %llu requests, %llu admitted, "
      "%llu rejected, %llu bad, %llu responses\n",
      rc == 0 ? "cleanly" : "past the deadline",
      static_cast<unsigned long long>(snap.accepted),
      static_cast<unsigned long long>(snap.requests),
      static_cast<unsigned long long>(snap.admitted),
      static_cast<unsigned long long>(snap.rejected),
      static_cast<unsigned long long>(snap.bad_lines),
      static_cast<unsigned long long>(snap.responded));
  return rc;
}

// snapshot build GRAPH --out=FILE freezes a text-format graph into a
// frozen snapshot image; snapshot info FILE prints an image's header and
// section table (format: docs/SNAPSHOT_FORMAT.md) without loading the
// graph payload.
int CmdSnapshot(const Options& o) {
  if (o.positional.empty()) return Fail("snapshot needs build|info");
  const std::string& verb = o.positional[0];
  std::string err;
  if (verb == "build") {
    if (o.positional.size() < 2) return Fail("snapshot build needs GRAPH");
    if (o.out.empty()) return Fail("snapshot build needs --out=FILE");
    std::optional<Graph> g = LoadGraph(o.positional[1]);
    if (!g.has_value()) return 1;
    if (!GraphSnapshot::Write(*g, o.out, &err)) return Fail(err);
    GraphSnapshot::Info info;
    if (!GraphSnapshot::ReadInfo(o.out, &info, &err)) return Fail(err);
    std::printf(
        "wrote %s: v%u, %llu nodes, %llu edges, %llu bytes, "
        "fingerprint %016llx\n",
        o.out.c_str(), info.version,
        static_cast<unsigned long long>(info.node_count),
        static_cast<unsigned long long>(info.edge_count),
        static_cast<unsigned long long>(info.file_bytes),
        static_cast<unsigned long long>(info.fingerprint));
    return 0;
  }
  if (verb == "info") {
    if (o.positional.size() < 2) return Fail("snapshot info needs FILE");
    GraphSnapshot::Info info;
    if (!GraphSnapshot::ReadInfo(o.positional[1], &info, &err)) {
      return Fail(err);
    }
    static const char* const kSectionNames[kSnapshotSectionCount] = {
        "node_labels",      "out_edges",       "in_edges",
        "out_edge_range",   "in_edge_range",   "out_nbrs",
        "in_nbrs",          "out_slices",      "in_slices",
        "out_slice_range",  "in_slice_range",  "bucket_nodes",
        "bucket_range",     "attr_ranges",     "attr_entries",
        "attr_entry_range", "string_pool",     "node_label_dict",
        "edge_label_dict",  "attr_name_dict",
    };
    std::printf("%s: snapshot v%u\n", o.positional[1].c_str(), info.version);
    std::printf("  file_bytes   %llu\n",
                static_cast<unsigned long long>(info.file_bytes));
    std::printf("  node_count   %llu\n",
                static_cast<unsigned long long>(info.node_count));
    std::printf("  edge_count   %llu\n",
                static_cast<unsigned long long>(info.edge_count));
    std::printf("  fingerprint  %016llx\n",
                static_cast<unsigned long long>(info.fingerprint));
    std::printf("  payload_hash %016llx\n",
                static_cast<unsigned long long>(info.payload_hash));
    std::printf("  %-3s %-16s %12s %12s\n", "id", "section", "offset",
                "bytes");
    for (const SnapSection& s : info.sections) {
      const char* name =
          s.id < kSnapshotSectionCount ? kSectionNames[s.id] : "?";
      std::printf("  %-3u %-16s %12llu %12llu\n", s.id, name,
                  static_cast<unsigned long long>(s.offset),
                  static_cast<unsigned long long>(s.bytes));
    }
    return 0;
  }
  return Fail("snapshot needs build|info");
}

// explain-plan PLANFILE [GRAPH] pretty-prints one persistent compiled plan
// (docs/PLAN_FORMAT.md): the store content address it occupies, the graph
// stamp it was compiled against, what PrepareQuery output it carries, and
// the canonical query. With GRAPH (honoring --snapshot) the plan is
// re-validated end to end — fingerprint, epoch, artifact coherence via
// PreparedFromPlan — exiting 2 when it is not servable for that graph.
int CmdExplainPlan(const Options& o) {
  if (o.positional.empty()) return Fail("explain-plan needs PLANFILE [GRAPH]");
  CompiledPlan plan;
  PlanStamp stamp;
  std::string err;
  if (!LoadPlanFile(o.positional[0], &plan, &stamp, &err)) return Fail(err);
  std::string body =
      PreparedQueryKeyBody(plan.semantics, plan.max_paths, plan.query_text);
  uint64_t key = PlanKeyHash(stamp.fingerprint, body);
  size_t steps = 0;
  size_t longest = 0;
  for (const auto& path : plan.paths) {
    steps += path.size();
    if (path.size() > longest) longest = path.size();
  }
  std::printf("%s: compiled plan v%u\n", o.positional[0].c_str(),
              kPlanVersion);
  std::printf("  store key         %016llx (%s)\n",
              static_cast<unsigned long long>(key), PlanFileName(key).c_str());
  std::printf("  graph fingerprint %016llx\n",
              static_cast<unsigned long long>(stamp.fingerprint));
  std::printf("  graph epoch       %016llx@%llu\n",
              static_cast<unsigned long long>(stamp.identity),
              static_cast<unsigned long long>(stamp.generation));
  std::printf("  semantics         %s\n", MatchSemanticsName(plan.semantics));
  std::printf("  max_paths         %llu\n",
              static_cast<unsigned long long>(plan.max_paths));
  std::printf("  answers           %zu\n", plan.answers.size());
  std::printf("  candidates        %zu\n", plan.output_candidates.size());
  std::printf("  sampled paths     %zu (%zu steps, longest %zu)\n",
              plan.paths.size(), steps, longest);
  std::printf("  footprint         %zu node labels, %zu edge labels, "
              "%zu attrs\n",
              plan.footprint.node_labels.size(),
              plan.footprint.edge_labels.size(),
              plan.footprint.attrs.size());
  std::printf("  query:\n");
  std::stringstream lines(plan.query_text);
  std::string qline;
  while (std::getline(lines, qline)) {
    std::printf("    %s\n", qline.c_str());
  }
  if (o.positional.size() < 2) return 0;
  std::optional<LoadedGraph> lg = LoadGraphAuto(o, o.positional[1]);
  if (!lg.has_value()) return 1;
  const Graph& g = lg->get();
  const char* graph_path = o.positional[1].c_str();
  uint64_t fp = PlanFingerprint(g);
  if (stamp.fingerprint != fp) {
    std::printf("  INVALID for %s: fingerprint mismatch (graph is %016llx)\n",
                graph_path, static_cast<unsigned long long>(fp));
    return 2;
  }
  if (stamp.identity == g.identity() && stamp.generation != g.generation()) {
    std::printf("  INVALID for %s: stale epoch (graph is at @%llu)\n",
                graph_path,
                static_cast<unsigned long long>(g.generation()));
    return 2;
  }
  std::shared_ptr<const PreparedQuery> prepared =
      PreparedFromPlan(plan, g, &err);
  if (prepared == nullptr) {
    std::printf("  INVALID for %s: %s\n", graph_path, err.c_str());
    return 2;
  }
  std::printf("  valid for %s: ready to serve (%zu answers)\n", graph_path,
              prepared->answers.size());
  return 0;
}

// update GRAPH BATCHFILE applies an update batch (graph_io.h text format)
// and reports the delta; --out=FILE writes the updated graph. Frozen
// (--snapshot) graphs are rejected with the typed kFrozen error.
int CmdUpdate(const Options& o) {
  if (o.positional.size() < 2) return Fail("update needs GRAPH BATCHFILE");
  std::optional<LoadedGraph> lg = LoadGraphAuto(o, o.positional[0]);
  if (!lg.has_value()) return 1;
  std::string err;
  std::optional<UpdateBatch> batch =
      ReadUpdateBatchFromFile(o.positional[1], &err);
  if (!batch.has_value()) return Fail(err);
  Graph next;
  UpdateResult result;
  if (!lg->get().ApplyUpdate(*batch, &next, &result)) {
    return Fail("update failed (" +
                std::string(UpdateStatusName(result.status)) +
                "): " + result.error);
  }
  std::printf("applied %zu ops: %s\n", batch->size(),
              result.delta.ToString().c_str());
  std::printf("generation %llu -> %llu\n",
              static_cast<unsigned long long>(lg->get().generation()),
              static_cast<unsigned long long>(next.generation()));
  if (!o.out.empty()) {
    if (!WriteGraphToFile(next, o.out)) return Fail("cannot write " + o.out);
    std::printf("wrote %s: %s\n", o.out.c_str(),
                ComputeStats(next).ToString().c_str());
  }
  return 0;
}

// Writes the paper's running example (Fig. 1) to PREFIX.graph and
// PREFIX.query and prints the node ids its Why/Why-not questions use, so
// scripts (tools/check_stats_json.sh) can drive file-based subcommands
// against the canonical fixture without hand-building a graph.
int CmdFigure1(const Options& o) {
  if (o.out.empty()) return Fail("figure1 needs --out=PREFIX");
  Figure1 f = MakeFigure1();
  std::string graph_path = o.out + ".graph";
  std::string query_path = o.out + ".query";
  if (!WriteGraphToFile(f.graph, graph_path)) {
    return Fail("cannot write " + graph_path);
  }
  std::ofstream qf(query_path);
  if (!qf) return Fail("cannot write " + query_path);
  qf << WriteQuery(f.query, f.graph);
  if (!qf) return Fail("cannot write " + query_path);
  std::printf("wrote %s and %s\n", graph_path.c_str(), query_path.c_str());
  std::printf("ids: a5=%u s5=%u s8=%u s9=%u\n", f.a5, f.s5, f.s8, f.s9);
  return 0;
}

// Self-contained smoke flow on the paper's Fig. 1 example; exits nonzero
// on any unexpected outcome (used as a ctest entry).
int CmdDemo() {
  Figure1 f = MakeFigure1();
  Matcher m(f.graph);
  std::vector<NodeId> answers = m.MatchOutput(f.query);
  if (answers.size() != 3) return Fail("demo: expected 3 answers");
  AnswerConfig cfg;
  cfg.budget = 4.0;
  cfg.guard_m = 0;
  WhyQuestion why{{f.a5, f.s5}};
  RewriteAnswer a = ExactWhy(f.graph, f.query, answers, why, cfg);
  if (!a.found || a.eval.closeness < 1.0) return Fail("demo: Why failed");
  WhyNotQuestion wn;
  wn.missing = {f.s8, f.s9};
  cfg.budget = 5.0;
  cfg.guard_m = 2;
  RewriteAnswer b = ExactWhyNot(f.graph, f.query, answers, wn, cfg);
  if (!b.found || b.eval.closeness < 1.0) return Fail("demo: Why-not failed");
  std::printf("demo OK: Why %s | Why-not %s\n",
              a.Explain(f.graph).c_str(), b.Explain(f.graph).c_str());
  return 0;
}

// CMake injects the project version (tools/CMakeLists.txt); the fallback
// covers out-of-tree compiles of this file.
#ifndef WHYQ_VERSION
#define WHYQ_VERSION "unversioned"
#endif

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: whyq_cli "
                 "generate|import|dot|stats|query|why|whynot|whyempty|"
                 "whysomany|serve-batch|serve|snapshot|explain-plan|update|"
                 "figure1|demo|--version ...\n");
    return 1;
  }
  if (std::strcmp(argv[1], "--version") == 0) {
    std::printf("whyq_cli %s\n", WHYQ_VERSION);
    return 0;
  }
  Options o;
  std::string err;
  if (!ParseArgs(argc, argv, &o, &err)) return Fail(err);
  std::string cmd = argv[1];
  if (cmd == "generate") return CmdGenerate(o);
  if (cmd == "import") return CmdImport(o);
  if (cmd == "dot") return CmdDot(o);
  if (cmd == "stats") return CmdStats(o);
  if (cmd == "query") return CmdQuery(o);
  if (cmd == "why") return CmdWhy(o, /*why_not=*/false);
  if (cmd == "whynot") return CmdWhy(o, /*why_not=*/true);
  if (cmd == "whyempty") return CmdWhyEmpty(o);
  if (cmd == "whysomany") return CmdWhySoMany(o);
  if (cmd == "serve-batch") return CmdServeBatch(o);
  if (cmd == "serve") return CmdServe(o);
  if (cmd == "snapshot") return CmdSnapshot(o);
  if (cmd == "explain-plan") return CmdExplainPlan(o);
  if (cmd == "update") return CmdUpdate(o);
  if (cmd == "figure1") return CmdFigure1(o);
  if (cmd == "demo") return CmdDemo();
  return Fail("unknown command " + cmd);
}

}  // namespace
}  // namespace whyq::cli

int main(int argc, char** argv) { return whyq::cli::Main(argc, argv); }
